package link

import (
	"fmt"
	"math"
	"time"

	"fhdnn/internal/invariant"
)

// LoRa/LPWAN modeling. The paper's motivation (Sec. 2.1) is that IoT
// devices sit on Low-Power Wide-Area Networks with tiny data rates, heavy
// duty-cycle limits, and high packet loss — which is why shipping 22 MB CNN
// updates is untenable and why a 20% packet loss operating point [Hu et
// al.] is attractive. This file provides the standard LoRa time-on-air and
// rate formulas so deployments can be budgeted on LPWAN, not just LTE.

// LoRaConfig describes one LoRa physical-layer configuration.
type LoRaConfig struct {
	// SF is the spreading factor, 7..12. Higher SF = longer range,
	// lower rate.
	SF int
	// BandwidthHz is the channel bandwidth (typically 125 kHz in EU868).
	BandwidthHz float64
	// CodingRate is the denominator x in 4/x forward error correction,
	// 5..8 (LoRaWAN default 5, i.e. CR 4/5).
	CodingRate int
	// PreambleSymbols is the preamble length (LoRaWAN default 8).
	PreambleSymbols int
	// ExplicitHeader enables the PHY header (LoRaWAN uplinks use it).
	ExplicitHeader bool
	// LowDataRateOptimize must be set for SF11/SF12 at 125 kHz.
	LowDataRateOptimize bool
}

// DefaultLoRa returns the LoRaWAN EU868 configuration for a spreading
// factor.
func DefaultLoRa(sf int) LoRaConfig {
	return LoRaConfig{
		SF:                  sf,
		BandwidthHz:         125e3,
		CodingRate:          5,
		PreambleSymbols:     8,
		ExplicitHeader:      true,
		LowDataRateOptimize: sf >= 11,
	}
}

// Validate checks the configuration ranges.
func (c LoRaConfig) Validate() error {
	if c.SF < 7 || c.SF > 12 {
		return fmt.Errorf("link: LoRa SF %d out of range [7,12]", c.SF)
	}
	if c.BandwidthHz <= 0 {
		return fmt.Errorf("link: LoRa bandwidth must be positive")
	}
	if c.CodingRate < 5 || c.CodingRate > 8 {
		return fmt.Errorf("link: LoRa coding rate 4/%d out of range", c.CodingRate)
	}
	return nil
}

// SymbolTime returns the duration of one LoRa symbol: 2^SF / BW.
func (c LoRaConfig) SymbolTime() time.Duration {
	sec := math.Exp2(float64(c.SF)) / c.BandwidthHz
	return time.Duration(sec * float64(time.Second))
}

// TimeOnAir returns the airtime of one packet with the given payload, per
// the Semtech LoRa modem designer's formula.
func (c LoRaConfig) TimeOnAir(payloadBytes int) time.Duration {
	if err := c.Validate(); err != nil {
		invariant.Failf("link: %v", err)
	}
	tSym := math.Exp2(float64(c.SF)) / c.BandwidthHz
	ih := 1.0 // implicit header flag: 0 when explicit header is on
	if c.ExplicitHeader {
		ih = 0
	}
	de := 0.0
	if c.LowDataRateOptimize {
		de = 1
	}
	pl := float64(payloadBytes)
	sf := float64(c.SF)
	num := 8*pl - 4*sf + 28 + 16 - 20*ih
	den := 4 * (sf - 2*de)
	// The per-block symbol count multiplier is (CR index + 4); with the
	// coding rate stored as the 4/x denominator, that is simply x.
	nPayload := 8 + math.Max(math.Ceil(num/den)*float64(c.CodingRate), 0)
	nTotal := float64(c.PreambleSymbols) + 4.25 + nPayload
	return time.Duration(nTotal * tSym * float64(time.Second))
}

// DataRate returns the nominal PHY bit rate: SF * BW/2^SF * 4/CR.
func (c LoRaConfig) DataRate() float64 {
	return float64(c.SF) * c.BandwidthHz / math.Exp2(float64(c.SF)) * 4 / float64(c.CodingRate)
}

// DemodulationFloorDB returns the approximate SNR below which the given
// spreading factor cannot be demodulated (Semtech datasheet values,
// -7.5 dB at SF7 down to -20 dB at SF12).
func DemodulationFloorDB(sf int) float64 {
	return -7.5 - 2.5*float64(sf-7)
}

// LoRaPacketErrorRate approximates PER as a function of the received SNR:
// ~0 well above the demodulation floor, ~1 well below, with a logistic
// transition of ~1 dB width around it — an empirical stand-in for the
// waterfall curves in LoRa link studies [Petäjäjärvi et al.].
func LoRaPacketErrorRate(c LoRaConfig, snrDB float64) float64 {
	floor := DemodulationFloorDB(c.SF)
	return 1 / (1 + math.Exp(2*(snrDB-floor)))
}

// DutyCycleThroughput converts a packet airtime and payload into the
// effective long-run throughput under a regulatory duty-cycle cap (EU868:
// 1%, i.e. dutyCycle=0.01).
func DutyCycleThroughput(payloadBytes int, toa time.Duration, dutyCycle float64) float64 {
	if dutyCycle <= 0 || dutyCycle > 1 {
		invariant.Fail("link: duty cycle must be in (0,1]")
	}
	if toa <= 0 {
		invariant.Fail("link: time on air must be positive")
	}
	return float64(payloadBytes*8) / toa.Seconds() * dutyCycle
}

// UploadTimeLoRa returns how long one model update takes on a LoRa link,
// fragmenting it into packets of payloadBytes and honouring the duty
// cycle. This is the number that makes CNN federated learning on LPWAN
// absurd — and FHDnn merely slow.
func UploadTimeLoRa(c LoRaConfig, updateBytes int64, payloadBytes int, dutyCycle float64) time.Duration {
	throughput := DutyCycleThroughput(payloadBytes, c.TimeOnAir(payloadBytes), dutyCycle)
	sec := float64(updateBytes*8) / throughput
	return time.Duration(sec * float64(time.Second))
}
