package link

import (
	"math"
	"testing"
	"time"
)

func TestShannonCapacity(t *testing.T) {
	// B=5 MHz, SNR=5 dB (3.162x): C = 5e6 * log2(4.162) ~ 10.3 Mb/s
	c := ShannonCapacity(5e6, 5)
	if c < 10.0e6 || c > 10.6e6 {
		t.Fatalf("capacity = %v", c)
	}
	// 0 dB -> log2(2) = 1 bit/s/Hz
	if got := ShannonCapacity(1e6, 0); math.Abs(got-1e6) > 1 {
		t.Fatalf("0 dB capacity = %v", got)
	}
}

func TestPaperLTEValid(t *testing.T) {
	cfg := PaperLTE()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("paper constants must validate: %v", err)
	}
	// The paper's error-free rate (1.6 Mb/s) must be far below capacity,
	// and the error-admitting rate (5 Mb/s) below it too but higher.
	if cfg.ErrorAdmittingRate <= cfg.ErrorFreeRate {
		t.Fatal("error-admitting rate should exceed error-free rate")
	}
}

func TestValidateRejectsOverCapacity(t *testing.T) {
	cfg := PaperLTE()
	cfg.ErrorFreeRate = 100e6
	if err := cfg.Validate(); err == nil {
		t.Fatal("rate above capacity must be rejected")
	}
	cfg = PaperLTE()
	cfg.ErrorFreeRate = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero rate must be rejected")
	}
}

func TestUploadTime(t *testing.T) {
	// 1 MB at 8 Mb/s = 1 s
	got := UploadTime(1_000_000, 8e6)
	if math.Abs(got.Seconds()-1) > 1e-9 {
		t.Fatalf("UploadTime = %v", got)
	}
}

func TestUploadTimeBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UploadTime(1, 0)
}

func TestRoundAndTrainingTime(t *testing.T) {
	up := UploadTime(1000, 1e6)
	if RoundTime(1000, 10, 1e6) != 10*up {
		t.Fatal("RoundTime must serialize uploads")
	}
	if TrainingTime(5, 1000, 10, 1e6) != 50*up {
		t.Fatal("TrainingTime must multiply rounds")
	}
}

func TestDataTransmitted(t *testing.T) {
	if DataTransmitted(100, 22_000_000) != 2_200_000_000 {
		t.Fatal("DataTransmitted wrong")
	}
}

func TestPerClientThroughputScalesInverse(t *testing.T) {
	if got := PerClientThroughput(10e6, 10); got != 1e6 {
		t.Fatalf("per-client throughput = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n<1")
		}
	}()
	PerClientThroughput(1e6, 0)
}

// Reproduce the paper's headline clock-time numbers: FHDnn converges in
// ~1.1 h (CIFAR IID) while ResNet takes ~374 h.
func TestPaperClockTimeShape(t *testing.T) {
	cfg := PaperLTE()
	// ResNet: 22 MB updates at the error-free 1.6 Mb/s, 100 clients,
	// ~120 rounds to converge.
	resnet := TrainingTime(120, 22_000_000, 100, cfg.ErrorFreeRate)
	// FHDnn: 1 MB updates at the error-admitting 5 Mb/s, 100 clients,
	// ~25 rounds to converge.
	fhdnn := TrainingTime(25, 1_000_000, 100, cfg.ErrorAdmittingRate)
	if fhdnn > 2*time.Hour {
		t.Fatalf("FHDnn clock time %v, paper reports ~1.1 h", fhdnn)
	}
	if resnet < 300*time.Hour || resnet > 450*time.Hour {
		t.Fatalf("ResNet clock time %v, paper reports ~374 h", resnet)
	}
	ratio := float64(resnet) / float64(fhdnn)
	if ratio < 100 {
		t.Fatalf("speedup ratio %v, expected > 100x", ratio)
	}
}
