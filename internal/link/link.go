// Package link models the wireless uplink budget of Sec. 4.4 of the FHDnn
// paper: federated learning over LTE frames, where each client occupies one
// 5 MHz / 10 ms frame in time-division duplexing. A conventional FL system
// must communicate error-free and is therefore rate-limited by coding
// overhead; FHDnn admits errors and communicates faster. The package
// converts (rounds, update size, client count, rate) into wall-clock
// training time, and provides Shannon-capacity helpers for sanity checks.
package link

import (
	"fmt"
	"math"
	"time"

	"fhdnn/internal/invariant"
)

// LTEConfig captures the paper's link assumptions.
type LTEConfig struct {
	BandwidthHz float64 // per-client LTE frame bandwidth (paper: 5 MHz)
	FrameSec    float64 // frame duration (paper: 10 ms, TDD)
	SNRdB       float64 // wireless channel SNR (paper: 5 dB)
	// ErrorFreeRate is the data rate sustainable with reliable, coded
	// transmission (paper: 1.6 Mbit/s for the CNN system).
	ErrorFreeRate float64
	// ErrorAdmittingRate is the rate when residual errors are tolerated
	// (paper: 5.0 Mbit/s for FHDnn).
	ErrorAdmittingRate float64
}

// PaperLTE returns the constants quoted in Sec. 4.4.
func PaperLTE() LTEConfig {
	return LTEConfig{
		BandwidthHz:        5e6,
		FrameSec:           10e-3,
		SNRdB:              5,
		ErrorFreeRate:      1.6e6,
		ErrorAdmittingRate: 5.0e6,
	}
}

// ShannonCapacity returns the channel capacity in bits/s for the given
// bandwidth and SNR: C = B log2(1 + SNR).
func ShannonCapacity(bandwidthHz, snrDB float64) float64 {
	snr := math.Pow(10, snrDB/10)
	return bandwidthHz * math.Log2(1+snr)
}

// Validate checks that the configured rates do not exceed capacity.
func (c LTEConfig) Validate() error {
	cap := ShannonCapacity(c.BandwidthHz, c.SNRdB)
	if c.ErrorFreeRate > cap {
		return fmt.Errorf("link: error-free rate %.3g b/s exceeds Shannon capacity %.3g b/s", c.ErrorFreeRate, cap)
	}
	// The error-admitting rate may exceed capacity: it trades residual
	// errors for speed, which is exactly the paper's operating point.
	if c.ErrorFreeRate <= 0 || c.ErrorAdmittingRate <= 0 {
		return fmt.Errorf("link: rates must be positive")
	}
	return nil
}

// UploadTime returns how long one client's update of the given size takes
// at rate bits/s.
func UploadTime(updateBytes int64, rateBitsPerSec float64) time.Duration {
	if rateBitsPerSec <= 0 {
		invariant.Fail("link: rate must be positive")
	}
	sec := float64(updateBytes*8) / rateBitsPerSec
	return time.Duration(sec * float64(time.Second))
}

// RoundTime returns the wall-clock duration of one communication round in
// which clientsPerRound clients each upload updateBytes, sharing the medium
// in TDD (uploads are serialized, as in the paper's accounting).
func RoundTime(updateBytes int64, clientsPerRound int, rateBitsPerSec float64) time.Duration {
	return time.Duration(clientsPerRound) * UploadTime(updateBytes, rateBitsPerSec)
}

// TrainingTime returns the wall-clock time for a full federated run of
// `rounds` communication rounds.
func TrainingTime(rounds int, updateBytes int64, clientsPerRound int, rateBitsPerSec float64) time.Duration {
	return time.Duration(rounds) * RoundTime(updateBytes, clientsPerRound, rateBitsPerSec)
}

// DataTransmitted returns the total bytes one client uploads over a run
// (the paper's data_transmitted = n_rounds x update_size).
func DataTransmitted(rounds int, updateBytes int64) int64 {
	return int64(rounds) * updateBytes
}

// PerClientThroughput models the 1/N capacity scaling of Sec. 3.5: the
// shared uplink divides its rate across n simultaneously active clients.
func PerClientThroughput(totalRateBitsPerSec float64, n int) float64 {
	if n < 1 {
		invariant.Fail("link: need at least one client")
	}
	return totalRateBitsPerSec / float64(n)
}
