package link

import (
	"math"
	"testing"
	"time"
)

func TestLoRaDataRatesMatchDatasheet(t *testing.T) {
	// LoRaWAN EU868 nominal rates at 125 kHz, CR 4/5 (Semtech datasheet):
	// SF7 ~5.47 kb/s, SF9 ~1.76 kb/s, SF12 ~0.25 kb/s.
	want := map[int]float64{7: 5468.75, 9: 1757.8, 12: 292.97}
	for sf, w := range want {
		got := DefaultLoRa(sf).DataRate()
		if math.Abs(got-w)/w > 0.02 {
			t.Fatalf("SF%d rate = %v, want ~%v", sf, got, w)
		}
	}
}

func TestLoRaTimeOnAirKnownValue(t *testing.T) {
	// A 51-byte payload at SF7/125kHz/CR4:5 with 8-symbol preamble and
	// explicit header is ~102.7 ms (standard airtime-calculator value).
	got := DefaultLoRa(7).TimeOnAir(51)
	if got < 95*time.Millisecond || got > 110*time.Millisecond {
		t.Fatalf("ToA(SF7, 51B) = %v, want ~102 ms", got)
	}
	// SF12 is dramatically slower (~2.8 s for the same payload).
	got12 := DefaultLoRa(12).TimeOnAir(51)
	if got12 < 2*time.Second || got12 > 3500*time.Millisecond {
		t.Fatalf("ToA(SF12, 51B) = %v, want ~2.8 s", got12)
	}
}

func TestLoRaTimeOnAirMonotonicInPayload(t *testing.T) {
	c := DefaultLoRa(9)
	prev := time.Duration(0)
	for _, pl := range []int{10, 20, 51, 100, 200} {
		got := c.TimeOnAir(pl)
		if got <= prev {
			t.Fatalf("ToA must grow with payload: %v after %v", got, prev)
		}
		prev = got
	}
}

func TestLoRaValidate(t *testing.T) {
	bad := []LoRaConfig{
		{SF: 6, BandwidthHz: 125e3, CodingRate: 5},
		{SF: 13, BandwidthHz: 125e3, CodingRate: 5},
		{SF: 9, BandwidthHz: 0, CodingRate: 5},
		{SF: 9, BandwidthHz: 125e3, CodingRate: 9},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
	if err := DefaultLoRa(11).Validate(); err != nil {
		t.Fatal(err)
	}
	if !DefaultLoRa(11).LowDataRateOptimize {
		t.Fatal("SF11 must enable low-data-rate optimization")
	}
}

func TestDemodulationFloor(t *testing.T) {
	if DemodulationFloorDB(7) != -7.5 || DemodulationFloorDB(12) != -20 {
		t.Fatalf("floors: SF7=%v SF12=%v", DemodulationFloorDB(7), DemodulationFloorDB(12))
	}
}

func TestLoRaPERWaterfall(t *testing.T) {
	c := DefaultLoRa(9)
	floor := DemodulationFloorDB(9)
	if per := LoRaPacketErrorRate(c, floor+5); per > 0.01 {
		t.Fatalf("PER well above floor = %v, want ~0", per)
	}
	if per := LoRaPacketErrorRate(c, floor-5); per < 0.99 {
		t.Fatalf("PER well below floor = %v, want ~1", per)
	}
	if per := LoRaPacketErrorRate(c, floor); math.Abs(per-0.5) > 0.01 {
		t.Fatalf("PER at floor = %v, want 0.5", per)
	}
}

func TestDutyCycleThroughput(t *testing.T) {
	// 51 bytes in ~102.7 ms at 1% duty cycle -> ~40 b/s effective
	c := DefaultLoRa(7)
	thr := DutyCycleThroughput(51, c.TimeOnAir(51), 0.01)
	if thr < 30 || thr > 50 {
		t.Fatalf("effective throughput = %v b/s, want ~40", thr)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad duty cycle")
		}
	}()
	DutyCycleThroughput(51, time.Second, 0)
}

// The Sec 2.1 motivation, quantified: one CNN update on a duty-cycled LoRa
// link takes over a month of airtime budget; an FHDnn update fits in a
// day. Federated learning on LPWAN is only conceivable with small updates.
func TestLPWANMakesCNNUpdatesAbsurd(t *testing.T) {
	c := DefaultLoRa(7)
	cnn := UploadTimeLoRa(c, 22_000_000, 51, 0.01) // 22 MB ResNet update
	fhd := UploadTimeLoRa(c, 400_000, 51, 0.01)    // 0.4 MB HD update
	if cnn < 30*24*time.Hour {
		t.Fatalf("CNN-on-LoRa upload = %v, expected > 1 month", cnn)
	}
	if fhd > 48*time.Hour {
		t.Fatalf("FHDnn-on-LoRa upload = %v, expected < 2 days", fhd)
	}
	if float64(cnn)/float64(fhd) < 50 {
		t.Fatal("update-size advantage must carry through the link model")
	}
}
