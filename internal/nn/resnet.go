package nn

import (
	"math/rand"

	"fhdnn/internal/tensor"
)

// BasicBlock is the ResNet v1 basic residual block:
// conv3x3-BN-ReLU-conv3x3-BN plus an identity (or 1x1 conv-BN projection)
// shortcut, followed by ReLU.
type BasicBlock struct {
	conv1 *Conv2D
	bn1   *BatchNorm2D
	relu1 *ReLU
	conv2 *Conv2D
	bn2   *BatchNorm2D
	// projection shortcut (nil for identity)
	projConv *Conv2D
	projBN   *BatchNorm2D
	relu2    *ReLU

	lastShortcut *tensor.Tensor
}

// NewBasicBlock builds a block mapping inC channels to outC with the given
// stride on the first convolution. A projection shortcut is inserted when
// the shape changes.
func NewBasicBlock(rng *rand.Rand, inC, outC, stride int) *BasicBlock {
	b := &BasicBlock{
		conv1: NewConv2D(rng, inC, outC, 3, stride, 1, false),
		bn1:   NewBatchNorm2D(outC),
		relu1: &ReLU{},
		conv2: NewConv2D(rng, outC, outC, 3, 1, 1, false),
		bn2:   NewBatchNorm2D(outC),
		relu2: &ReLU{},
	}
	if stride != 1 || inC != outC {
		b.projConv = NewConv2D(rng, inC, outC, 1, stride, 0, false)
		b.projBN = NewBatchNorm2D(outC)
	}
	return b
}

// Forward computes relu(main(x) + shortcut(x)).
func (b *BasicBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := b.conv1.Forward(x, train)
	main = b.bn1.Forward(main, train)
	main = b.relu1.Forward(main, train)
	main = b.conv2.Forward(main, train)
	main = b.bn2.Forward(main, train)

	shortcut := x
	if b.projConv != nil {
		shortcut = b.projConv.Forward(x, train)
		shortcut = b.projBN.Forward(shortcut, train)
	}
	main.AddInPlace(shortcut)
	if train {
		b.lastShortcut = shortcut
	}
	return b.relu2.Forward(main, train)
}

// Backward propagates through both branches and sums the input gradients.
func (b *BasicBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	grad = b.relu2.Backward(grad)
	// grad flows identically into the main branch and the shortcut.
	gMain := b.bn2.Backward(grad)
	gMain = b.conv2.Backward(gMain)
	gMain = b.relu1.Backward(gMain)
	gMain = b.bn1.Backward(gMain)
	gMain = b.conv1.Backward(gMain)

	gShort := grad
	if b.projConv != nil {
		gShort = b.projBN.Backward(gShort)
		gShort = b.projConv.Backward(gShort)
	}
	gMain.AddInPlace(gShort)
	return gMain
}

// Params returns the parameters of all sublayers.
func (b *BasicBlock) Params() []*Param {
	ps := append(b.conv1.Params(), b.bn1.Params()...)
	ps = append(ps, b.conv2.Params()...)
	ps = append(ps, b.bn2.Params()...)
	if b.projConv != nil {
		ps = append(ps, b.projConv.Params()...)
		ps = append(ps, b.projBN.Params()...)
	}
	return ps
}

// ResNetConfig sizes a ResNet-18-family network. The paper's ResNet-18 uses
// BaseWidth 64 on 32x32x3 CIFAR images (11.2M parameters); the federated
// training sweeps in this repository default to a reduced BaseWidth so that
// pure-Go CPU training completes quickly, with the architecture unchanged.
type ResNetConfig struct {
	InChannels int
	NumClasses int
	BaseWidth  int   // width of the stem; stages use 1x, 2x, 4x, 8x
	Blocks     []int // blocks per stage; ResNet-18 is {2, 2, 2, 2}
}

// DefaultResNet18 returns the paper-faithful configuration (11.2M params on
// 10 classes).
func DefaultResNet18(inChannels, numClasses int) ResNetConfig {
	return ResNetConfig{InChannels: inChannels, NumClasses: numClasses, BaseWidth: 64, Blocks: []int{2, 2, 2, 2}}
}

// TinyResNet18 returns the same topology at reduced width for fast CPU
// experiments.
func TinyResNet18(inChannels, numClasses int) ResNetConfig {
	return ResNetConfig{InChannels: inChannels, NumClasses: numClasses, BaseWidth: 8, Blocks: []int{2, 2, 2, 2}}
}

// ResNet is the CIFAR-style ResNet: 3x3 stem (no max-pool), four stages of
// basic blocks with strides {1,2,2,2}, global average pooling and a linear
// classifier head. Body (everything before the head) is exposed separately
// so it can serve as a feature extractor.
type ResNet struct {
	Body *Sequential // stem + stages + GAP: NCHW -> [batch, features]
	Head *Linear     // classifier
	Cfg  ResNetConfig
}

// NewResNet constructs the network with He initialization from rng.
func NewResNet(rng *rand.Rand, cfg ResNetConfig) *ResNet {
	if len(cfg.Blocks) == 0 {
		cfg.Blocks = []int{2, 2, 2, 2}
	}
	layers := []Layer{
		NewConv2D(rng, cfg.InChannels, cfg.BaseWidth, 3, 1, 1, false),
		NewBatchNorm2D(cfg.BaseWidth),
		&ReLU{},
	}
	inC := cfg.BaseWidth
	width := cfg.BaseWidth
	for stage, nBlocks := range cfg.Blocks {
		stride := 2
		if stage == 0 {
			stride = 1
		}
		for bIdx := 0; bIdx < nBlocks; bIdx++ {
			s := 1
			if bIdx == 0 {
				s = stride
			}
			layers = append(layers, NewBasicBlock(rng, inC, width, s))
			inC = width
		}
		width *= 2
	}
	layers = append(layers, &GlobalAvgPool{})
	return &ResNet{
		Body: NewSequential(layers...),
		Head: NewLinear(rng, inC, cfg.NumClasses),
		Cfg:  cfg,
	}
}

// FeatureDim returns the dimensionality of the Body output.
func (r *ResNet) FeatureDim() int { return r.Head.In }

// Forward runs body and head.
func (r *ResNet) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return r.Head.Forward(r.Body.Forward(x, train), train)
}

// Backward propagates through head and body.
func (r *ResNet) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return r.Body.Backward(r.Head.Backward(grad))
}

// Params returns all trainable parameters.
func (r *ResNet) Params() []*Param { return append(r.Body.Params(), r.Head.Params()...) }

// MNISTCNNConfig sizes the paper's MNIST baseline: 2 convolution layers and
// 2 fully connected layers.
type MNISTCNNConfig struct {
	InChannels int
	ImgSize    int
	NumClasses int
	C1, C2     int // conv widths (paper-scale: 32, 64)
	Hidden     int // FC hidden width (paper-scale: 128)
}

// DefaultMNISTCNN returns a paper-scale configuration for 28x28 inputs.
func DefaultMNISTCNN() MNISTCNNConfig {
	return MNISTCNNConfig{InChannels: 1, ImgSize: 28, NumClasses: 10, C1: 32, C2: 64, Hidden: 128}
}

// NewMNISTCNN builds conv-relu-pool x2 followed by two dense layers.
func NewMNISTCNN(rng *rand.Rand, cfg MNISTCNNConfig) *Sequential {
	// Two stride-1 same-pad convs, each followed by 2x2 pooling.
	after := cfg.ImgSize / 4
	return NewSequential(
		NewConv2D(rng, cfg.InChannels, cfg.C1, 3, 1, 1, true),
		&ReLU{},
		NewMaxPool2D(2),
		NewConv2D(rng, cfg.C1, cfg.C2, 3, 1, 1, true),
		&ReLU{},
		NewMaxPool2D(2),
		&Flatten{},
		NewLinear(rng, cfg.C2*after*after, cfg.Hidden),
		&ReLU{},
		NewLinear(rng, cfg.Hidden, cfg.NumClasses),
	)
}
