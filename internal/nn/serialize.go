package nn

// FlattenParams concatenates all parameter values into one vector, in
// parameter order. This is the "model update" that a federated client
// transmits: the uplink channel models operate on this flat view.
func FlattenParams(params []*Param) []float32 {
	out := make([]float32, 0, NumParams(params))
	for _, p := range params {
		out = append(out, p.W.Data()...)
	}
	return out
}

// SetFlatParams writes a flat vector (as produced by FlattenParams) back
// into the parameters. It panics if the length does not match.
func SetFlatParams(params []*Param, flat []float32) {
	if len(flat) != NumParams(params) {
		panic("nn: SetFlatParams length mismatch")
	}
	off := 0
	for _, p := range params {
		n := p.W.Len()
		copy(p.W.Data(), flat[off:off+n])
		off += n
	}
}

// CopyParams copies parameter values from src into dst. The two lists must
// describe identically shaped models.
func CopyParams(dst, src []*Param) {
	if len(dst) != len(src) {
		panic("nn: CopyParams model mismatch")
	}
	for i := range dst {
		if dst[i].W.Len() != src[i].W.Len() {
			panic("nn: CopyParams shape mismatch")
		}
		copy(dst[i].W.Data(), src[i].W.Data())
	}
}
