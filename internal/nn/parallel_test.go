package nn

import (
	"math/rand"
	"sync"
	"testing"

	"fhdnn/internal/tensor"
)

func withWorkers(t *testing.T, n int) {
	t.Helper()
	old := tensor.SetWorkers(n)
	t.Cleanup(func() { tensor.SetWorkers(old) })
}

// convFixture rebuilds an identical layer + batch from fixed seeds so each
// worker-count run starts from the same parameters and zero gradients.
func convFixture() (*Conv2D, *tensor.Tensor) {
	c := NewConv2D(rand.New(rand.NewSource(3)), 2, 4, 3, 1, 1, true)
	x := tensor.Randn(rand.New(rand.NewSource(4)), 1, 6, 2, 8, 8)
	return c, x
}

// TestConv2DBitIdenticalAcrossWorkers locks in the determinism contract of
// the pooled layers: forward outputs, input gradients, weight gradients
// (fixed-grain block partials) and bias gradients are all bit-identical for
// every worker-pool size.
func TestConv2DBitIdenticalAcrossWorkers(t *testing.T) {
	withWorkers(t, 1)
	cRef, x := convFixture()
	outRef := cRef.Forward(x, true)
	gradRef := cRef.Backward(outRef.Clone())

	for _, w := range []int{2, 3, 8} {
		old := tensor.SetWorkers(w)
		c, _ := convFixture()
		out := c.Forward(x, true)
		if !out.Equal(outRef, 0) {
			t.Fatalf("workers=%d: forward output diverged", w)
		}
		gradIn := c.Backward(out.Clone())
		if !gradIn.Equal(gradRef, 0) {
			t.Fatalf("workers=%d: input gradient diverged", w)
		}
		for pi, p := range c.Params() {
			ref := cRef.Params()[pi].Grad
			if !p.Grad.Equal(ref, 0) {
				t.Fatalf("workers=%d: gradient of %s diverged", w, p.Name)
			}
		}
		tensor.SetWorkers(old)
	}
}

func TestPoolingLayersBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.Randn(rng, 1, 7, 3, 8, 8)
	grads := tensor.Randn(rng, 1, 7, 3, 4, 4)
	gapGrad := tensor.Randn(rng, 1, 7, 3)

	type result struct{ out, back *tensor.Tensor }
	run := func() map[string]result {
		res := map[string]result{}
		mp := NewMaxPool2D(2)
		o := mp.Forward(x, true)
		res["maxpool"] = result{o, mp.Backward(grads)}
		ap := NewAvgPool2D(2)
		o = ap.Forward(x, true)
		res["avgpool"] = result{o, ap.Backward(grads)}
		gp := &GlobalAvgPool{}
		o = gp.Forward(x, true)
		res["gap"] = result{o, gp.Backward(gapGrad)}
		return res
	}

	withWorkers(t, 1)
	ref := run()
	for _, w := range []int{2, 3, 8} {
		old := tensor.SetWorkers(w)
		got := run()
		for name, r := range got {
			if !r.out.Equal(ref[name].out, 0) {
				t.Fatalf("workers=%d: %s forward diverged", w, name)
			}
			if !r.back.Equal(ref[name].back, 0) {
				t.Fatalf("workers=%d: %s backward diverged", w, name)
			}
		}
		tensor.SetWorkers(old)
	}
}

func TestLinearBitIdenticalAcrossWorkers(t *testing.T) {
	x := tensor.Randn(rand.New(rand.NewSource(6)), 1, 9, 40)
	build := func() *Linear { return NewLinear(rand.New(rand.NewSource(7)), 40, 12) }

	withWorkers(t, 1)
	lRef := build()
	outRef := lRef.Forward(x, true)
	backRef := lRef.Backward(outRef.Clone())
	for _, w := range []int{2, 3, 8} {
		old := tensor.SetWorkers(w)
		l := build()
		out := l.Forward(x, true)
		if !out.Equal(outRef, 0) {
			t.Fatalf("workers=%d: forward diverged", w)
		}
		back := l.Backward(out.Clone())
		if !back.Equal(backRef, 0) {
			t.Fatalf("workers=%d: input gradient diverged", w)
		}
		for pi, p := range l.Params() {
			if !p.Grad.Equal(lRef.Params()[pi].Grad, 0) {
				t.Fatalf("workers=%d: gradient of %s diverged", w, p.Name)
			}
		}
		tensor.SetWorkers(old)
	}
}

// TestLayersConcurrentHammer drives independent layer instances from many
// goroutines over the shared worker pool, as concurrent simulated federated
// clients do. Run with -race; it exercises the pool's semaphore under
// nesting (per-sample ParallelFor containing parallel matmuls).
func TestLayersConcurrentHammer(t *testing.T) {
	withWorkers(t, 4)
	x := tensor.Randn(rand.New(rand.NewSource(8)), 1, 6, 2, 8, 8)
	withWorkersRef := func() (*tensor.Tensor, *tensor.Tensor) {
		c, _ := convFixture()
		out := c.Forward(x, true)
		return out, c.Backward(out.Clone())
	}
	wantOut, wantGrad := withWorkersRef()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, _ := convFixture()
			for it := 0; it < 20; it++ {
				ZeroGrad(c.Params())
				out := c.Forward(x, true)
				if !out.Equal(wantOut, 0) {
					t.Error("concurrent forward diverged")
					return
				}
				grad := c.Backward(out.Clone())
				if !grad.Equal(wantGrad, 0) {
					t.Error("concurrent backward diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestParallelTrainingStillLearns(t *testing.T) {
	withWorkers(t, 4)
	rng := rand.New(rand.NewSource(4))
	net := NewSequential(
		NewConv2D(rng, 1, 4, 3, 1, 1, false),
		&ReLU{},
		&Flatten{},
		NewLinear(rng, 4*6*6, 2),
	)
	n := 12
	x := tensor.New(n, 1, 6, 6)
	labels := make([]int, n)
	for s := 0; s < n; s++ {
		labels[s] = s % 2
		v := float32(-1)
		if labels[s] == 1 {
			v = 1
		}
		for i := 0; i < 36; i++ {
			x.Data()[s*36+i] = v + float32(rng.NormFloat64())*0.2
		}
	}
	opt := NewSGD(0.05, 0.9, 0)
	for it := 0; it < 40; it++ {
		ZeroGrad(net.Params())
		logits := net.Forward(x, true)
		_, grad := CrossEntropy(logits, labels)
		net.Backward(grad)
		opt.Step(net.Params())
	}
	logits := net.Forward(x, false)
	if acc := Accuracy(logits, labels); acc < 1 {
		t.Fatalf("parallel training accuracy %v", acc)
	}
}
