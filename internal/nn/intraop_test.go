package nn

import (
	"math"
	"math/rand"
	"testing"

	"fhdnn/internal/tensor"
)

func withIntraOp(t *testing.T, n int) {
	t.Helper()
	old := IntraOp
	IntraOp = n
	t.Cleanup(func() { IntraOp = old })
}

func TestBatchChunks(t *testing.T) {
	chunks := batchChunks(10, 3)
	if len(chunks) != 3 {
		t.Fatalf("chunks = %v", chunks)
	}
	total := 0
	prev := 0
	for _, c := range chunks {
		if c[0] != prev {
			t.Fatalf("non-contiguous chunks %v", chunks)
		}
		total += c[1] - c[0]
		prev = c[1]
	}
	if total != 10 {
		t.Fatalf("chunks cover %d samples", total)
	}
	if got := batchChunks(2, 8); len(got) != 2 {
		t.Fatalf("more workers than samples: %v", got)
	}
	if got := batchChunks(5, 0); len(got) != 1 || got[0] != [2]int{0, 5} {
		t.Fatalf("zero workers: %v", got)
	}
}

func TestConv2DParallelForwardIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(rng, 3, 8, 3, 1, 1, true)
	x := tensor.Randn(rng, 1, 7, 3, 10, 10)
	seq := c.Forward(x, false)
	withIntraOp(t, 4)
	par := c.Forward(x, false)
	if !seq.Equal(par, 0) {
		t.Fatal("parallel forward must be bit-identical")
	}
}

func TestConv2DParallelBackwardEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	build := func() (*Conv2D, *tensor.Tensor, *tensor.Tensor) {
		r := rand.New(rand.NewSource(3))
		c := NewConv2D(r, 2, 4, 3, 1, 1, true)
		x := tensor.Randn(rng, 1, 6, 2, 8, 8)
		return c, x, nil
	}
	cSeq, x, _ := build()
	ySeq := cSeq.Forward(x, true)
	gSeq := cSeq.Backward(ySeq.Clone())

	withIntraOp(t, 3)
	cPar, _, _ := build()
	yPar := cPar.Forward(x, true)
	gPar := cPar.Backward(yPar.Clone())

	// input gradients: disjoint writes, must be identical
	if !gSeq.Equal(gPar, 0) {
		t.Fatal("parallel input gradient must be identical")
	}
	// weight gradients: equal up to float summation order
	wSeq := cSeq.Params()[0].Grad
	wPar := cPar.Params()[0].Grad
	for i := range wSeq.Data() {
		a, b := float64(wSeq.Data()[i]), float64(wPar.Data()[i])
		if math.Abs(a-b) > 1e-3*(math.Abs(a)+1) {
			t.Fatalf("weight grad %d: %v vs %v", i, a, b)
		}
	}
	// bias gradients are computed outside the parallel region: identical
	bSeq := cSeq.Params()[1].Grad
	bPar := cPar.Params()[1].Grad
	for i := range bSeq.Data() {
		if bSeq.Data()[i] != bPar.Data()[i] {
			t.Fatal("bias grads must match")
		}
	}
}

func TestParallelTrainingStillLearns(t *testing.T) {
	withIntraOp(t, 4)
	rng := rand.New(rand.NewSource(4))
	net := NewSequential(
		NewConv2D(rng, 1, 4, 3, 1, 1, false),
		&ReLU{},
		&Flatten{},
		NewLinear(rng, 4*6*6, 2),
	)
	n := 12
	x := tensor.New(n, 1, 6, 6)
	labels := make([]int, n)
	for s := 0; s < n; s++ {
		labels[s] = s % 2
		v := float32(-1)
		if labels[s] == 1 {
			v = 1
		}
		for i := 0; i < 36; i++ {
			x.Data()[s*36+i] = v + float32(rng.NormFloat64())*0.2
		}
	}
	opt := NewSGD(0.05, 0.9, 0)
	for it := 0; it < 40; it++ {
		ZeroGrad(net.Params())
		logits := net.Forward(x, true)
		_, grad := CrossEntropy(logits, labels)
		net.Backward(grad)
		opt.Step(net.Params())
	}
	logits := net.Forward(x, false)
	if acc := Accuracy(logits, labels); acc < 1 {
		t.Fatalf("parallel training accuracy %v", acc)
	}
}
