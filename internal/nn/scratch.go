package nn

import "sync"

// scratchPool recycles float32 scratch buffers (im2col lowerings, column
// gradients, pooled planes) across layer invocations and across the worker
// goroutines of tensor.ParallelFor, so steady-state training does not
// allocate per sample. Buffers are stored at full capacity; a pooled buffer
// that is too small for the request is dropped and a fresh one allocated.
var scratchPool sync.Pool

func getScratch(n int) []float32 {
	if v, ok := scratchPool.Get().(*[]float32); ok && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]float32, n)
}

func putScratch(buf []float32) {
	scratchPool.Put(&buf)
}
