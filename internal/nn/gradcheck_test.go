package nn

import (
	"math"
	"math/rand"
	"testing"

	"fhdnn/internal/tensor"
)

// numericGrad estimates dLoss/dx by central differences for every element
// of x, where loss is recomputed via f().
func numericGrad(x *tensor.Tensor, f func() float64) *tensor.Tensor {
	const h = 1e-2
	g := tensor.New(x.Shape()...)
	for i := range x.Data() {
		orig := x.Data()[i]
		x.Data()[i] = orig + h
		lp := f()
		x.Data()[i] = orig - h
		lm := f()
		x.Data()[i] = orig
		g.Data()[i] = float32((lp - lm) / (2 * h))
	}
	return g
}

// checkGrads compares analytic and numeric gradients with a mixed
// absolute/relative tolerance suited to float32 forward passes.
func checkGrads(t *testing.T, name string, analytic, numeric *tensor.Tensor) {
	t.Helper()
	if analytic.Len() != numeric.Len() {
		t.Fatalf("%s: gradient length mismatch", name)
	}
	for i := range analytic.Data() {
		a, n := float64(analytic.Data()[i]), float64(numeric.Data()[i])
		diff := math.Abs(a - n)
		scale := math.Max(math.Abs(a), math.Abs(n))
		if diff > 2e-2 && diff/math.Max(scale, 1e-6) > 0.12 {
			t.Fatalf("%s: grad[%d] analytic %v vs numeric %v", name, i, a, n)
		}
	}
}

// lossThrough runs a full forward pass through layer and a quadratic loss
// sum(0.5*y^2), whose gradient w.r.t. y is simply y.
func lossThrough(layer Layer, x *tensor.Tensor) float64 {
	y := layer.Forward(x, true)
	s := 0.0
	for _, v := range y.Data() {
		s += 0.5 * float64(v) * float64(v)
	}
	return s
}

func analyticThrough(layer Layer, x *tensor.Tensor) (inGrad *tensor.Tensor) {
	ZeroGrad(layer.Params())
	y := layer.Forward(x, true)
	return layer.Backward(y.Clone())
}

func testLayerGradients(t *testing.T, name string, layer Layer, x *tensor.Tensor) {
	t.Helper()
	inGrad := analyticThrough(layer, x)
	// input gradient
	numIn := numericGrad(x, func() float64 { return lossThrough(layer, x) })
	checkGrads(t, name+"/input", inGrad, numIn)
	// parameter gradients
	analyticThrough(layer, x) // refresh caches + grads
	for pi, p := range layer.Params() {
		numP := numericGrad(p.W, func() float64 { return lossThrough(layer, x) })
		checkGrads(t, name+"/param"+p.Name+string(rune('0'+pi)), p.Grad, numP)
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 4, 3)
	x := tensor.Randn(rng, 1, 2, 4)
	testLayerGradients(t, "Linear", l, x)
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D(rng, 2, 3, 3, 1, 1, true)
	x := tensor.Randn(rng, 1, 2, 2, 5, 5)
	testLayerGradients(t, "Conv2D", c, x)
}

func TestConv2DStride2Gradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv2D(rng, 1, 2, 3, 2, 1, false)
	x := tensor.Randn(rng, 1, 2, 1, 6, 6)
	testLayerGradients(t, "Conv2DStride2", c, x)
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bn := NewBatchNorm2D(2)
	// offset gamma/beta from the trivial init so the test is meaningful
	bn.gamma.W.Data()[0] = 1.3
	bn.beta.W.Data()[1] = -0.4
	x := tensor.Randn(rng, 1, 3, 2, 3, 3)
	testLayerGradients(t, "BatchNorm2D", bn, x)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := &ReLU{}
	// keep values away from 0 so finite differences don't cross the kink
	x := tensor.RandUniform(rng, 0.2, 1.5, 2, 6)
	for i := 0; i < x.Len(); i += 2 {
		x.Data()[i] = -x.Data()[i]
	}
	testLayerGradients(t, "ReLU", r, x)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := NewMaxPool2D(2)
	// well-separated values so the argmax does not flip under perturbation
	x := tensor.New(1, 1, 4, 4)
	perm := rng.Perm(16)
	for i, pv := range perm {
		x.Data()[i] = float32(pv)
	}
	testLayerGradients(t, "MaxPool2D", p, x)
}

func TestAvgPool2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	p := NewAvgPool2D(2)
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	testLayerGradients(t, "AvgPool2D", p, x)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := &GlobalAvgPool{}
	x := tensor.Randn(rng, 1, 2, 3, 2, 2)
	testLayerGradients(t, "GlobalAvgPool", p, x)
}

func TestBasicBlockIdentityGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := NewBasicBlock(rng, 2, 2, 1)
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	inGrad := analyticThrough(b, x)
	numIn := numericGrad(x, func() float64 { return lossThrough(b, x) })
	checkGrads(t, "BasicBlock/input", inGrad, numIn)
}

func TestBasicBlockProjectionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := NewBasicBlock(rng, 2, 4, 2)
	if b.projConv == nil {
		t.Fatal("expected projection shortcut for shape change")
	}
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	inGrad := analyticThrough(b, x)
	numIn := numericGrad(x, func() float64 { return lossThrough(b, x) })
	checkGrads(t, "BasicBlockProj/input", inGrad, numIn)
}

func TestCrossEntropyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	logits := tensor.Randn(rng, 1, 3, 4)
	labels := []int{1, 3, 0}
	_, grad := CrossEntropy(logits, labels)
	num := numericGrad(logits, func() float64 {
		l, _ := CrossEntropy(logits, labels)
		return l
	})
	checkGrads(t, "CrossEntropy", grad, num)
}

func TestNTXentGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	z := tensor.Randn(rng, 1, 6, 4) // n=3 pairs
	_, grad := NTXent(z, 0.5)
	num := numericGrad(z, func() float64 {
		l, _ := NTXent(z, 0.5)
		return l
	})
	checkGrads(t, "NTXent", grad, num)
}
