package nn

import (
	"fmt"
	"math/rand"
	"sync"

	"fhdnn/internal/tensor"
)

// IntraOp is the number of goroutines convolution layers may use to split
// a batch (default 1 = sequential). Forward outputs are bit-identical for
// any setting (disjoint writes); weight gradients are deterministic for a
// fixed setting but may differ in the last float32 bits between settings
// (summation order). Leave at 1 when an outer level (e.g. the federated
// client simulator) already parallelizes, to avoid oversubscription.
var IntraOp = 1

// batchChunks splits n samples into at most workers contiguous chunks.
func batchChunks(n, workers int) [][2]int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	out := make([][2]int, 0, workers)
	per := n / workers
	extra := n % workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + per
		if w < extra {
			hi++
		}
		if hi > lo {
			out = append(out, [2]int{lo, hi})
		}
		lo = hi
	}
	return out
}

// Conv2D is a 2-D convolution over NCHW batches with square stride and
// zero padding. Weights are stored as [outC, inC*KH*KW] so the forward pass
// is a single matrix multiply against the im2col lowering of each image.
type Conv2D struct {
	InC, OutC  int
	KH, KW     int
	Stride     int
	Pad        int
	UseBias    bool
	weight     *Param
	bias       *Param
	lastInput  *tensor.Tensor
	lastGeom   tensor.ConvGeom
	colScratch []float32
}

// NewConv2D constructs a convolution with He-initialized weights.
func NewConv2D(rng *rand.Rand, inC, outC, k, stride, pad int, useBias bool) *Conv2D {
	fanIn := inC * k * k
	w := tensor.Randn(rng, kaimingStd(fanIn), outC, fanIn)
	c := &Conv2D{
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad, UseBias: useBias,
		weight: NewParam(fmt.Sprintf("conv%dx%d_w", k, k), w, false),
	}
	if useBias {
		c.bias = NewParam("conv_b", tensor.New(outC), true)
	}
	return c
}

// Params returns the weight (and bias, if enabled).
func (c *Conv2D) Params() []*Param {
	if c.UseBias {
		return []*Param{c.weight, c.bias}
	}
	return []*Param{c.weight}
}

func (c *Conv2D) geom(x *tensor.Tensor) tensor.ConvGeom {
	if x.NumDims() != 4 {
		panic(fmt.Sprintf("nn: Conv2D expects NCHW input, got shape %v", x.Shape()))
	}
	if x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects %d input channels, got %d", c.InC, x.Dim(1)))
	}
	return tensor.ConvGeom{
		InC: c.InC, InH: x.Dim(2), InW: x.Dim(3),
		KH: c.KH, KW: c.KW, Stride: c.Stride, Pad: c.Pad,
	}
}

// Forward computes the convolution for a batch, splitting the samples
// across IntraOp goroutines when enabled.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := c.geom(x)
	n := x.Dim(0)
	outH, outW := g.OutH(), g.OutW()
	out := tensor.New(n, c.OutC, outH, outW)
	colLen := g.ColRows() * g.ColCols()
	imgLen := g.InC * g.InH * g.InW
	outLen := c.OutC * outH * outW

	forwardRange := func(lo, hi int, col []float32) {
		for s := lo; s < hi; s++ {
			img := x.Data()[s*imgLen : (s+1)*imgLen]
			g.Im2Col(img, col)
			colT := tensor.FromSlice(col, g.ColRows(), g.ColCols())
			// out_s = W * col^T : [outC, colCols] x [colCols, colRows]
			res := tensor.MatMulTransB(c.weight.W, colT)
			copy(out.Data()[s*outLen:(s+1)*outLen], res.Data())
		}
	}
	chunks := batchChunks(n, IntraOp)
	if len(chunks) <= 1 {
		if cap(c.colScratch) < colLen {
			c.colScratch = make([]float32, colLen)
		}
		forwardRange(0, n, c.colScratch[:colLen])
	} else {
		var wg sync.WaitGroup
		for _, ch := range chunks {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				forwardRange(lo, hi, make([]float32, colLen))
			}(ch[0], ch[1])
		}
		wg.Wait()
	}
	if c.UseBias {
		plane := outH * outW
		for s := 0; s < n; s++ {
			base := s * outLen
			for oc := 0; oc < c.OutC; oc++ {
				b := c.bias.W.Data()[oc]
				seg := out.Data()[base+oc*plane : base+(oc+1)*plane]
				for i := range seg {
					seg[i] += b
				}
			}
		}
	}
	if train {
		c.lastInput = x
		c.lastGeom = g
	}
	return out
}

// Backward accumulates weight/bias gradients and returns the input gradient.
// The im2col lowering is recomputed per sample rather than cached for the
// whole batch, trading CPU for memory. With IntraOp > 1 the batch is split
// across goroutines; each accumulates weight gradients into a private
// buffer and the buffers are reduced in worker order, so results are
// deterministic for a fixed IntraOp value (floating-point summation order,
// and hence the last bits, can differ between IntraOp settings).
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.lastInput == nil {
		panic("nn: Conv2D.Backward before Forward(train=true)")
	}
	g := c.lastGeom
	x := c.lastInput
	n := x.Dim(0)
	outH, outW := g.OutH(), g.OutW()
	outLen := c.OutC * outH * outW
	imgLen := g.InC * g.InH * g.InW
	colLen := g.ColRows() * g.ColCols()
	gradIn := tensor.New(x.Shape()...)

	backwardRange := func(lo, hi int, dW *tensor.Tensor, col, imgGrad []float32) {
		for s := lo; s < hi; s++ {
			img := x.Data()[s*imgLen : (s+1)*imgLen]
			g.Im2Col(img, col)
			colT := tensor.FromSlice(col, g.ColRows(), g.ColCols())
			gradMat := tensor.FromSlice(grad.Data()[s*outLen:(s+1)*outLen], c.OutC, g.ColRows())
			// dW += gradMat [outC, colRows] * col [colRows, colCols]
			tensor.MatMulAccum(dW, gradMat, colT)
			// dCol = gradMat^T [colRows, outC] * W [outC, colCols]
			dCol := tensor.MatMulTransA(gradMat, c.weight.W)
			g.Col2Im(dCol.Data(), imgGrad)
			copy(gradIn.Data()[s*imgLen:(s+1)*imgLen], imgGrad)
		}
	}
	chunks := batchChunks(n, IntraOp)
	if len(chunks) <= 1 {
		if cap(c.colScratch) < colLen {
			c.colScratch = make([]float32, colLen)
		}
		backwardRange(0, n, c.weight.Grad, c.colScratch[:colLen], make([]float32, imgLen))
	} else {
		partials := make([]*tensor.Tensor, len(chunks))
		var wg sync.WaitGroup
		for wi, ch := range chunks {
			wg.Add(1)
			partials[wi] = tensor.New(c.weight.Grad.Shape()...)
			go func(wi, lo, hi int) {
				defer wg.Done()
				backwardRange(lo, hi, partials[wi], make([]float32, colLen), make([]float32, imgLen))
			}(wi, ch[0], ch[1])
		}
		wg.Wait()
		for _, p := range partials {
			c.weight.Grad.AddInPlace(p)
		}
	}
	if c.UseBias {
		plane := outH * outW
		for s := 0; s < n; s++ {
			base := s * outLen
			for oc := 0; oc < c.OutC; oc++ {
				sum := float32(0)
				seg := grad.Data()[base+oc*plane : base+(oc+1)*plane]
				for _, v := range seg {
					sum += v
				}
				c.bias.Grad.Data()[oc] += sum
			}
		}
	}
	return gradIn
}
