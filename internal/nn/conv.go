package nn

import (
	"fmt"
	"math/rand"

	"fhdnn/internal/tensor"
)

// gradBlock is the fixed accumulation grain for Conv2D weight gradients:
// samples are grouped into blocks of this many, each block accumulates into
// a private partial buffer, and the partials are reduced in ascending block
// order. Because the grain is a constant — not derived from the worker
// count — the floating-point summation order is the same no matter how
// tensor.ParallelFor distributes blocks, so weight gradients are
// bit-identical for every tensor.SetWorkers setting.
const gradBlock = 8

// Conv2D is a 2-D convolution over NCHW batches with square stride and
// zero padding. Weights are stored as [outC, inC*KH*KW] so the forward pass
// is a single matrix multiply against the im2col lowering of each image.
// Batches are split across the shared tensor worker pool
// (tensor.SetWorkers / FHDNN_WORKERS); outputs and all gradients are
// bit-identical for every pool size.
type Conv2D struct {
	InC, OutC int
	KH, KW    int
	Stride    int
	Pad       int
	UseBias   bool
	weight    *Param
	bias      *Param
	lastInput *tensor.Tensor
	lastGeom  tensor.ConvGeom
}

// NewConv2D constructs a convolution with He-initialized weights.
func NewConv2D(rng *rand.Rand, inC, outC, k, stride, pad int, useBias bool) *Conv2D {
	fanIn := inC * k * k
	w := tensor.Randn(rng, kaimingStd(fanIn), outC, fanIn)
	c := &Conv2D{
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad, UseBias: useBias,
		weight: NewParam(fmt.Sprintf("conv%dx%d_w", k, k), w, false),
	}
	if useBias {
		c.bias = NewParam("conv_b", tensor.New(outC), true)
	}
	return c
}

// Params returns the weight (and bias, if enabled).
func (c *Conv2D) Params() []*Param {
	if c.UseBias {
		return []*Param{c.weight, c.bias}
	}
	return []*Param{c.weight}
}

func (c *Conv2D) geom(x *tensor.Tensor) tensor.ConvGeom {
	if x.NumDims() != 4 {
		panic(fmt.Sprintf("nn: Conv2D expects NCHW input, got shape %v", x.Shape()))
	}
	if x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects %d input channels, got %d", c.InC, x.Dim(1)))
	}
	return tensor.ConvGeom{
		InC: c.InC, InH: x.Dim(2), InW: x.Dim(3),
		KH: c.KH, KW: c.KW, Stride: c.Stride, Pad: c.Pad,
	}
}

// Forward computes the convolution for a batch. Samples are distributed
// over the shared worker pool; every sample's output is written by exactly
// one goroutine through kernels that are themselves bit-deterministic, so
// the result does not depend on the pool size.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g := c.geom(x)
	n := x.Dim(0)
	outH, outW := g.OutH(), g.OutW()
	out := tensor.New(n, c.OutC, outH, outW)
	colLen := g.ColLen()
	imgLen := g.InC * g.InH * g.InW
	outLen := c.OutC * outH * outW
	colRows := g.ColRows()
	tensor.ParallelFor(n, func(lo, hi int) {
		col := getScratch(colLen)
		defer putScratch(col)
		colT := tensor.FromSlice(col, colRows, g.ColCols())
		for s := lo; s < hi; s++ {
			g.Im2Col(x.Data()[s*imgLen:(s+1)*imgLen], col)
			// out_s = W * col^T : [outC, colCols] x [colCols, colRows]
			outMat := tensor.FromSlice(out.Data()[s*outLen:(s+1)*outLen], c.OutC, colRows)
			tensor.MatMulTransBInto(outMat, c.weight.W, colT)
			if c.UseBias {
				plane := outH * outW
				base := s * outLen
				for oc := 0; oc < c.OutC; oc++ {
					b := c.bias.W.Data()[oc]
					seg := out.Data()[base+oc*plane : base+(oc+1)*plane]
					for i := range seg {
						seg[i] += b
					}
				}
			}
		}
	})
	if train {
		c.lastInput = x
		c.lastGeom = g
	}
	return out
}

// Backward accumulates weight/bias gradients and returns the input
// gradient. The im2col lowering is recomputed per sample rather than cached
// for the whole batch, trading CPU for memory. Input gradients are disjoint
// per-sample writes; weight gradients use fixed-grain block partials (see
// gradBlock), so both are bit-identical for every worker-pool size.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.lastInput == nil {
		panic("nn: Conv2D.Backward before Forward(train=true)")
	}
	g := c.lastGeom
	x := c.lastInput
	n := x.Dim(0)
	outH, outW := g.OutH(), g.OutW()
	outLen := c.OutC * outH * outW
	imgLen := g.InC * g.InH * g.InW
	colLen := g.ColLen()
	colRows := g.ColRows()
	colCols := g.ColCols()
	gradIn := tensor.New(x.Shape()...)

	nb := (n + gradBlock - 1) / gradBlock
	partials := make([]*tensor.Tensor, nb)
	tensor.ParallelFor(nb, func(blo, bhi int) {
		col := getScratch(colLen)
		dCol := getScratch(colLen)
		defer putScratch(col)
		defer putScratch(dCol)
		colT := tensor.FromSlice(col, colRows, colCols)
		dColT := tensor.FromSlice(dCol, colRows, colCols)
		for bi := blo; bi < bhi; bi++ {
			dW := tensor.New(c.OutC, colCols)
			partials[bi] = dW
			hi := (bi + 1) * gradBlock
			if hi > n {
				hi = n
			}
			for s := bi * gradBlock; s < hi; s++ {
				img := x.Data()[s*imgLen : (s+1)*imgLen]
				g.Im2Col(img, col)
				gradMat := tensor.FromSlice(grad.Data()[s*outLen:(s+1)*outLen], c.OutC, colRows)
				// dW += gradMat [outC, colRows] * col [colRows, colCols]
				tensor.MatMulAccum(dW, gradMat, colT)
				// dCol = gradMat^T [colRows, outC] * W [outC, colCols]
				tensor.MatMulTransAInto(dColT, gradMat, c.weight.W)
				g.Col2Im(dCol, gradIn.Data()[s*imgLen:(s+1)*imgLen])
			}
		}
	})
	for _, p := range partials {
		c.weight.Grad.AddInPlace(p)
	}
	if c.UseBias {
		plane := outH * outW
		for s := 0; s < n; s++ {
			base := s * outLen
			for oc := 0; oc < c.OutC; oc++ {
				sum := float32(0)
				seg := grad.Data()[base+oc*plane : base+(oc+1)*plane]
				for _, v := range seg {
					sum += v
				}
				c.bias.Grad.Data()[oc] += sum
			}
		}
	}
	return gradIn
}
