package nn

import "fhdnn/internal/tensor"

// SGD is stochastic gradient descent with classical momentum and decoupled
// L2 weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    map[*Param]*tensor.Tensor
}

// NewSGD constructs an optimizer. Momentum 0 disables the velocity buffers.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*Param]*tensor.Tensor)}
}

// Step applies one update to every parameter:
//
//	g    = grad + wd*w        (wd skipped for NoDecay params)
//	v    = momentum*v - lr*g
//	w   += v
func (o *SGD) Step(params []*Param) {
	lr := float32(o.LR)
	mu := float32(o.Momentum)
	wd := float32(o.WeightDecay)
	for _, p := range params {
		w := p.W.Data()
		g := p.Grad.Data()
		if o.Momentum == 0 {
			for i := range w {
				gi := g[i]
				if wd != 0 && !p.NoDecay {
					gi += wd * w[i]
				}
				w[i] -= lr * gi
			}
			continue
		}
		v, ok := o.velocity[p]
		if !ok {
			v = tensor.New(p.W.Shape()...)
			o.velocity[p] = v
		}
		vd := v.Data()
		for i := range w {
			gi := g[i]
			if wd != 0 && !p.NoDecay {
				gi += wd * w[i]
			}
			vd[i] = mu*vd[i] - lr*gi
			w[i] += vd[i]
		}
	}
}

// Reset clears all momentum buffers (used when a client re-initializes from
// a fresh global model each round).
func (o *SGD) Reset() {
	o.velocity = make(map[*Param]*tensor.Tensor)
}
