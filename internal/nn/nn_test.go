package nn

import (
	"math"
	"math/rand"
	"testing"

	"fhdnn/internal/tensor"
)

func TestLinearForwardKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 2, 2)
	copy(l.weight.W.Data(), []float32{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(l.bias.W.Data(), []float32{10, 20})
	x := tensor.FromSlice([]float32{1, 1}, 1, 2)
	y := l.Forward(x, false)
	if y.At(0, 0) != 13 || y.At(0, 1) != 27 {
		t.Fatalf("Linear forward = %v", y.Data())
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	logits := tensor.Randn(rng, 3, 5, 7)
	p := Softmax(logits)
	for s := 0; s < 5; s++ {
		sum := 0.0
		for k := 0; k < 7; k++ {
			v := p.At(s, k)
			if v < 0 || v > 1 {
				t.Fatalf("prob out of range: %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", s, sum)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits := tensor.FromSlice([]float32{1000, 1001, 999}, 1, 3)
	p := Softmax(logits)
	sum := 0.0
	for _, v := range p.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax overflowed")
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestCrossEntropyGradRowsSumToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	logits := tensor.Randn(rng, 1, 4, 6)
	_, grad := CrossEntropy(logits, []int{0, 1, 2, 3})
	for s := 0; s < 4; s++ {
		sum := 0.0
		for k := 0; k < 6; k++ {
			sum += float64(grad.At(s, k))
		}
		if math.Abs(sum) > 1e-5 {
			t.Fatalf("grad row %d sums to %v, want 0", s, sum)
		}
	}
}

func TestCrossEntropyPerfectPrediction(t *testing.T) {
	logits := tensor.FromSlice([]float32{100, 0, 0}, 1, 3)
	loss, _ := CrossEntropy(logits, []int{0})
	if loss > 1e-6 {
		t.Fatalf("loss for perfect prediction = %v", loss)
	}
}

func TestCrossEntropyBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range label")
		}
	}()
	CrossEntropy(tensor.New(1, 3), []int{5})
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 2, 0,
		5, 1, 1,
		0, 0, 3,
	}, 3, 3)
	acc := Accuracy(logits, []int{1, 0, 0})
	if math.Abs(acc-2.0/3.0) > 1e-9 {
		t.Fatalf("Accuracy = %v", acc)
	}
}

func TestSGDStepNoMomentum(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float32{1, 2}, 2), false)
	p.Grad.Data()[0] = 0.5
	p.Grad.Data()[1] = -0.5
	opt := NewSGD(0.1, 0, 0)
	opt.Step([]*Param{p})
	if math.Abs(float64(p.W.Data()[0])-0.95) > 1e-6 || math.Abs(float64(p.W.Data()[1])-2.05) > 1e-6 {
		t.Fatalf("SGD step = %v", p.W.Data())
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float32{0}, 1), false)
	opt := NewSGD(1, 0.9, 0)
	p.Grad.Data()[0] = 1
	opt.Step([]*Param{p}) // v=-1, w=-1
	opt.Step([]*Param{p}) // v=-1.9, w=-2.9
	if math.Abs(float64(p.W.Data()[0])+2.9) > 1e-6 {
		t.Fatalf("momentum step = %v", p.W.Data()[0])
	}
	opt.Reset()
	opt.Step([]*Param{p}) // v=-1 again, w=-3.9
	if math.Abs(float64(p.W.Data()[0])+3.9) > 1e-6 {
		t.Fatalf("after Reset = %v", p.W.Data()[0])
	}
}

func TestSGDWeightDecaySkipsNoDecay(t *testing.T) {
	w1 := NewParam("w", tensor.FromSlice([]float32{1}, 1), false)
	w2 := NewParam("b", tensor.FromSlice([]float32{1}, 1), true)
	opt := NewSGD(0.1, 0, 1.0)
	opt.Step([]*Param{w1, w2})
	if math.Abs(float64(w1.W.Data()[0])-0.9) > 1e-6 {
		t.Fatalf("decayed param = %v, want 0.9", w1.W.Data()[0])
	}
	if w2.W.Data()[0] != 1 {
		t.Fatalf("NoDecay param changed: %v", w2.W.Data()[0])
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := &Flatten{}
	x := tensor.Randn(rng, 1, 2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("flatten shape %v", y.Shape())
	}
	g := f.Backward(y)
	if g.NumDims() != 4 || g.Dim(3) != 5 {
		t.Fatalf("backward shape %v", g.Shape())
	}
}

func TestFlattenParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewSequential(NewLinear(rng, 3, 4), &ReLU{}, NewLinear(rng, 4, 2))
	flat := FlattenParams(net.Params())
	if len(flat) != NumParams(net.Params()) {
		t.Fatal("flat length mismatch")
	}
	flat2 := make([]float32, len(flat))
	for i := range flat2 {
		flat2[i] = float32(i)
	}
	SetFlatParams(net.Params(), flat2)
	got := FlattenParams(net.Params())
	for i := range got {
		if got[i] != flat2[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestSetFlatParamsLengthMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewSequential(NewLinear(rng, 2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SetFlatParams(net.Params(), make([]float32, 3))
}

func TestCopyParams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewSequential(NewLinear(rng, 2, 2))
	b := NewSequential(NewLinear(rng, 2, 2))
	CopyParams(b.Params(), a.Params())
	fa, fb := FlattenParams(a.Params()), FlattenParams(b.Params())
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("CopyParams mismatch")
		}
	}
}

func TestBatchNormTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bn := NewBatchNorm2D(1)
	x := tensor.Randn(rng, 3, 8, 1, 4, 4)
	x.Scale(2)
	for i := range x.Data() {
		x.Data()[i] += 5
	}
	// Train for several steps so running stats approach batch stats.
	for i := 0; i < 200; i++ {
		bn.Forward(x, true)
	}
	yTrain := bn.Forward(x, true)
	yEval := bn.Forward(x, false)
	// With converged running stats, train and eval outputs agree closely.
	for i := range yTrain.Data() {
		if math.Abs(float64(yTrain.Data()[i]-yEval.Data()[i])) > 0.2 {
			t.Fatalf("train/eval divergence at %d: %v vs %v", i, yTrain.Data()[i], yEval.Data()[i])
		}
	}
	// Normalized output: mean ~0, std ~1.
	if m := yTrain.Mean(); math.Abs(m) > 1e-3 {
		t.Fatalf("BN output mean %v", m)
	}
}

func TestMNISTCNNShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := MNISTCNNConfig{InChannels: 1, ImgSize: 8, NumClasses: 10, C1: 4, C2: 8, Hidden: 16}
	net := NewMNISTCNN(rng, cfg)
	x := tensor.Randn(rng, 1, 2, 1, 8, 8)
	y := net.Forward(x, false)
	if y.Dim(0) != 2 || y.Dim(1) != 10 {
		t.Fatalf("MNIST CNN output %v", y.Shape())
	}
}

func TestResNetShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := NewResNet(rng, TinyResNet18(3, 10))
	x := tensor.Randn(rng, 1, 2, 3, 16, 16)
	y := net.Forward(x, false)
	if y.Dim(0) != 2 || y.Dim(1) != 10 {
		t.Fatalf("ResNet output %v", y.Shape())
	}
	if net.FeatureDim() != 8*8 {
		t.Fatalf("feature dim %d, want 64", net.FeatureDim())
	}
	feat := net.Body.Forward(x, false)
	if feat.Dim(1) != net.FeatureDim() {
		t.Fatalf("body output %v", feat.Shape())
	}
}

func TestResNet18ParamCountMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-width ResNet-18 construction is slow")
	}
	rng := rand.New(rand.NewSource(11))
	net := NewResNet(rng, DefaultResNet18(3, 10))
	n := NumParams(net.Params())
	// The paper quotes "ResNet with 11M parameters" (Sec 4.4).
	if n < 11_000_000 || n > 11_300_000 {
		t.Fatalf("ResNet-18 parameter count = %d, want ~11.17M", n)
	}
}

func TestResNetTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewResNet(rng, ResNetConfig{InChannels: 1, NumClasses: 2, BaseWidth: 4, Blocks: []int{1, 1}})
	// Two linearly separable classes of 8x8 images.
	n := 16
	x := tensor.New(n, 1, 8, 8)
	labels := make([]int, n)
	for s := 0; s < n; s++ {
		labels[s] = s % 2
		val := float32(-1)
		if labels[s] == 1 {
			val = 1
		}
		for i := 0; i < 64; i++ {
			x.Data()[s*64+i] = val + float32(rng.NormFloat64())*0.3
		}
	}
	opt := NewSGD(0.05, 0.9, 0)
	var first, last float64
	for it := 0; it < 30; it++ {
		ZeroGrad(net.Params())
		logits := net.Forward(x, true)
		loss, grad := CrossEntropy(logits, labels)
		if it == 0 {
			first = loss
		}
		last = loss
		net.Backward(grad)
		opt.Step(net.Params())
	}
	if last >= first*0.5 {
		t.Fatalf("ResNet training did not reduce loss: %v -> %v", first, last)
	}
}

func TestSequentialTrainingLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewSequential(NewLinear(rng, 2, 16), &ReLU{}, NewLinear(rng, 16, 2))
	// XOR-ish data requires the hidden layer.
	xs := []float32{0, 0, 0, 1, 1, 0, 1, 1}
	labels := []int{0, 1, 1, 0}
	x := tensor.FromSlice(xs, 4, 2)
	opt := NewSGD(0.3, 0.9, 0)
	for it := 0; it < 300; it++ {
		ZeroGrad(net.Params())
		logits := net.Forward(x, true)
		_, grad := CrossEntropy(logits, labels)
		net.Backward(grad)
		opt.Step(net.Params())
	}
	logits := net.Forward(x, false)
	if acc := Accuracy(logits, labels); acc < 1 {
		t.Fatalf("failed to learn XOR: accuracy %v", acc)
	}
}

func TestNTXentPullsPositivesTogether(t *testing.T) {
	// With two well-aligned positive pairs, loss should be lower than with
	// misaligned pairs.
	aligned := tensor.FromSlice([]float32{
		1, 0, 0, 1, 0, 0, // pair views (rows 0&2, 1&3)
		1, 0.1, 0, 0.1, 1, 0,
	}, 4, 3)
	// rows: z0, z1, z0', z1' where zi' is the positive of zi
	lossA, _ := NTXent(aligned, 0.5)
	misaligned := tensor.FromSlice([]float32{
		1, 0, 0, 0, 1, 0,
		0, 1, 0, 1, 0, 0,
	}, 4, 3)
	lossB, _ := NTXent(misaligned, 0.5)
	if lossA >= lossB {
		t.Fatalf("aligned loss %v should beat misaligned %v", lossA, lossB)
	}
}

func TestNTXentOddBatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd batch")
		}
	}()
	NTXent(tensor.New(5, 3), 0.5)
}

func TestKaimingStd(t *testing.T) {
	if got := kaimingStd(2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("kaimingStd(2) = %v", got)
	}
	if got := kaimingStd(0); got != 1 {
		t.Fatalf("kaimingStd(0) = %v", got)
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	layers := []Layer{
		NewConv2D(rng, 1, 1, 3, 1, 1, false),
		NewLinear(rng, 2, 2),
		NewBatchNorm2D(1),
		&GlobalAvgPool{},
		NewMaxPool2D(2),
	}
	for i, l := range layers {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("layer %d: expected panic on Backward before Forward", i)
				}
			}()
			l.Backward(tensor.New(1, 1, 2, 2))
		}()
	}
}
