package nn

import (
	"math"
	"testing"

	"fhdnn/internal/tensor"
)

func TestConstantLR(t *testing.T) {
	s := ConstantLR{Rate: 0.1}
	if s.LR(0) != 0.1 || s.LR(1000) != 0.1 {
		t.Fatal("constant schedule must not move")
	}
}

func TestStepLR(t *testing.T) {
	s := StepLR{Base: 1, Gamma: 0.1, StepSize: 10}
	if s.LR(0) != 1 || s.LR(9) != 1 {
		t.Fatal("first interval must use base")
	}
	if math.Abs(s.LR(10)-0.1) > 1e-12 || math.Abs(s.LR(25)-0.01) > 1e-12 {
		t.Fatalf("decay wrong: %v %v", s.LR(10), s.LR(25))
	}
	if (StepLR{Base: 2, Gamma: 0.5}).LR(100) != 2 {
		t.Fatal("StepSize=0 must be constant")
	}
}

func TestCosineLR(t *testing.T) {
	s := CosineLR{Base: 1, Min: 0.1, Total: 100}
	if s.LR(0) != 1 {
		t.Fatalf("start = %v", s.LR(0))
	}
	mid := s.LR(50)
	if math.Abs(mid-0.55) > 1e-9 {
		t.Fatalf("midpoint = %v, want 0.55", mid)
	}
	if s.LR(100) != 0.1 || s.LR(500) != 0.1 {
		t.Fatal("must floor at Min")
	}
	// monotone decreasing
	prev := math.Inf(1)
	for step := 0; step <= 100; step += 10 {
		lr := s.LR(step)
		if lr > prev {
			t.Fatalf("cosine must not increase: %v after %v", lr, prev)
		}
		prev = lr
	}
}

func TestWarmupLR(t *testing.T) {
	s := WarmupLR{Warmup: 10, Inner: ConstantLR{Rate: 1}}
	if got := s.LR(0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("first warmup step = %v", got)
	}
	if got := s.LR(4); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("mid warmup = %v", got)
	}
	if s.LR(10) != 1 || s.LR(99) != 1 {
		t.Fatal("after warmup must match inner")
	}
	if (WarmupLR{Warmup: 0, Inner: ConstantLR{Rate: 2}}).LR(0) != 2 {
		t.Fatal("zero warmup must be transparent")
	}
}

func TestStepWithUpdatesRate(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float32{0}, 1), false)
	p.Grad.Data()[0] = 1
	opt := NewSGD(99, 0, 0) // rate will be overridden
	opt.StepWith(StepLR{Base: 0.5, Gamma: 0.1, StepSize: 1}, 1, []*Param{p})
	// step 1 -> lr 0.05; w = -0.05
	if math.Abs(float64(p.W.Data()[0])+0.05) > 1e-7 {
		t.Fatalf("w = %v", p.W.Data()[0])
	}
	if opt.LR != 0.05 {
		t.Fatalf("optimizer LR = %v", opt.LR)
	}
}
