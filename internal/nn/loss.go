package nn

import (
	"fmt"
	"math"

	"fhdnn/internal/tensor"
)

// Softmax computes row-wise softmax probabilities of logits [n, k] into a
// new tensor, using the max-subtraction trick for numerical stability.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, k := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, k)
	for s := 0; s < n; s++ {
		row := logits.Data()[s*k : (s+1)*k]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		orow := out.Data()[s*k : (s+1)*k]
		for i, v := range row {
			e := math.Exp(float64(v - maxV))
			orow[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range orow {
			orow[i] *= inv
		}
	}
	return out
}

// CrossEntropy computes the mean softmax cross-entropy loss of logits
// [n, k] against integer labels, and the gradient w.r.t. the logits
// (already divided by the batch size).
func CrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: CrossEntropy got %d labels for batch of %d", len(labels), n))
	}
	probs := Softmax(logits)
	grad = probs.Clone()
	invN := float32(1 / float64(n))
	for s := 0; s < n; s++ {
		y := labels[s]
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, k))
		}
		p := float64(probs.At(s, y))
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		grad.Set(grad.At(s, y)-1, s, y)
	}
	loss /= float64(n)
	grad.Scale(invN)
	return loss, grad
}

// Accuracy returns the fraction of rows of logits whose argmax equals the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, k := logits.Dim(0), logits.Dim(1)
	correct := 0
	for s := 0; s < n; s++ {
		row := logits.Data()[s*k : (s+1)*k]
		best, bi := row[0], 0
		for i, v := range row[1:] {
			if v > best {
				best, bi = v, i+1
			}
		}
		if bi == labels[s] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// NTXent computes the normalized-temperature cross-entropy loss of SimCLR
// (Chen et al., 2020) over a batch of 2n projected embeddings z [2n, d],
// where rows i and i+n are the two augmented views of the same image. It
// returns the loss and the gradient w.r.t. z.
func NTXent(z *tensor.Tensor, temperature float64) (float64, *tensor.Tensor) {
	twoN, d := z.Dim(0), z.Dim(1)
	if twoN%2 != 0 || twoN < 4 {
		panic(fmt.Sprintf("nn: NTXent needs an even batch of >= 4 embeddings, got %d", twoN))
	}
	n := twoN / 2

	// L2-normalize rows; keep norms to backprop through the normalization.
	zn := tensor.New(twoN, d)
	norms := make([]float64, twoN)
	for i := 0; i < twoN; i++ {
		row := z.Data()[i*d : (i+1)*d]
		s := 0.0
		for _, v := range row {
			s += float64(v) * float64(v)
		}
		nv := math.Sqrt(s)
		if nv < 1e-12 {
			nv = 1e-12
		}
		norms[i] = nv
		orow := zn.Data()[i*d : (i+1)*d]
		inv := float32(1 / nv)
		for j, v := range row {
			orow[j] = v * inv
		}
	}

	// Cosine similarity matrix / temperature.
	sim := tensor.MatMulTransB(zn, zn) // [2n, 2n]
	invT := 1 / temperature

	loss := 0.0
	// dL/dsim accumulated here.
	dSim := tensor.New(twoN, twoN)
	for i := 0; i < twoN; i++ {
		pos := (i + n) % twoN
		// softmax over j != i of sim[i,j]/T
		maxV := math.Inf(-1)
		for j := 0; j < twoN; j++ {
			if j == i {
				continue
			}
			v := float64(sim.At(i, j)) * invT
			if v > maxV {
				maxV = v
			}
		}
		denom := 0.0
		for j := 0; j < twoN; j++ {
			if j == i {
				continue
			}
			denom += math.Exp(float64(sim.At(i, j))*invT - maxV)
		}
		logDenom := math.Log(denom) + maxV
		posV := float64(sim.At(i, pos)) * invT
		loss += logDenom - posV
		// gradient: dL_i/dsim[i,j] = (softmax_j - 1{j==pos}) / T
		for j := 0; j < twoN; j++ {
			if j == i {
				continue
			}
			p := math.Exp(float64(sim.At(i, j))*invT-maxV) / denom
			g := p * invT
			if j == pos {
				g -= invT
			}
			dSim.Set(dSim.At(i, j)+float32(g/float64(twoN)), i, j)
		}
	}
	loss /= float64(twoN)

	// Backprop through sim = zn zn^T: dZn = (dSim + dSim^T) zn.
	dSimSym := tensor.New(twoN, twoN)
	for i := 0; i < twoN; i++ {
		for j := 0; j < twoN; j++ {
			dSimSym.Set(dSim.At(i, j)+dSim.At(j, i), i, j)
		}
	}
	dZn := tensor.MatMul(dSimSym, zn) // [2n, d]

	// Backprop through row normalization: if u = z/||z||,
	// dz = (du - u (u . du)) / ||z||.
	dZ := tensor.New(twoN, d)
	for i := 0; i < twoN; i++ {
		u := zn.Data()[i*d : (i+1)*d]
		du := dZn.Data()[i*d : (i+1)*d]
		dot := 0.0
		for j := range u {
			dot += float64(u[j]) * float64(du[j])
		}
		inv := float32(1 / norms[i])
		out := dZ.Data()[i*d : (i+1)*d]
		for j := range u {
			out[j] = (du[j] - u[j]*float32(dot)) * inv
		}
	}
	return loss, dZ
}
