package nn

import "math"

// Schedule maps a 0-based step index to a learning rate. Schedules matter
// for the SimCLR pretraining stage (contrastive training is sensitive to
// the decay shape) and for squeezing the last accuracy out of the CNN
// baselines.
type Schedule interface {
	LR(step int) float64
}

// ConstantLR always returns the same rate.
type ConstantLR struct {
	Rate float64
}

// LR implements Schedule.
func (s ConstantLR) LR(int) float64 { return s.Rate }

// StepLR multiplies the base rate by Gamma every StepSize steps.
type StepLR struct {
	Base     float64
	Gamma    float64
	StepSize int
}

// LR implements Schedule.
func (s StepLR) LR(step int) float64 {
	if s.StepSize <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Gamma, float64(step/s.StepSize))
}

// CosineLR anneals from Base to Min over Total steps, then stays at Min.
type CosineLR struct {
	Base  float64
	Min   float64
	Total int
}

// LR implements Schedule.
func (s CosineLR) LR(step int) float64 {
	if s.Total <= 0 || step >= s.Total {
		return s.Min
	}
	frac := float64(step) / float64(s.Total)
	return s.Min + 0.5*(s.Base-s.Min)*(1+math.Cos(math.Pi*frac))
}

// WarmupLR ramps linearly from 0 to the inner schedule's rate over Warmup
// steps, then defers to it.
type WarmupLR struct {
	Warmup int
	Inner  Schedule
}

// LR implements Schedule.
func (s WarmupLR) LR(step int) float64 {
	base := s.Inner.LR(step)
	if s.Warmup <= 0 || step >= s.Warmup {
		return base
	}
	return base * float64(step+1) / float64(s.Warmup)
}

// StepWith updates the optimizer's rate from the schedule and applies one
// optimization step.
func (o *SGD) StepWith(sched Schedule, step int, params []*Param) {
	o.LR = sched.LR(step)
	o.Step(params)
}
