package nn

import (
	"fmt"
	"math"

	"fhdnn/internal/tensor"
)

// BatchNorm2D normalizes each channel of NCHW batches over the batch and
// spatial dimensions, with learned affine parameters gamma/beta and running
// statistics for evaluation mode.
//
// The running mean and variance are exposed through Params() as non-
// trainable (zero-gradient, NoDecay) parameters. This matters for federated
// learning: FedAvg must transmit and average the BN buffers along with the
// weights, or the aggregated global model evaluates with stale statistics
// and its accuracy collapses as gamma/beta drift.
type BatchNorm2D struct {
	C        int
	Eps      float32
	Momentum float32 // running-stat update rate (new = (1-m)*old + m*batch)

	gamma, beta *Param
	rmean, rvar *Param

	// forward caches for backward
	lastXHat   *tensor.Tensor
	lastInvStd []float32
	lastShape  []int
}

// NewBatchNorm2D constructs a batch norm over c channels.
func NewBatchNorm2D(c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C: c, Eps: 1e-5, Momentum: 0.1,
		gamma: NewParam("bn_gamma", tensor.Full(1, c), true),
		beta:  NewParam("bn_beta", tensor.New(c), true),
		rmean: NewParam("bn_rmean", tensor.New(c), true),
		rvar:  NewParam("bn_rvar", tensor.Full(1, c), true),
	}
	return bn
}

// Params returns gamma, beta, and the (non-trainable) running statistics.
// The running statistics receive no gradient, so optimizers leave them
// unchanged; they ride along so that parameter flattening captures the full
// module state.
func (bn *BatchNorm2D) Params() []*Param {
	return []*Param{bn.gamma, bn.beta, bn.rmean, bn.rvar}
}

// Forward normalizes per channel. In training mode batch statistics are used
// and folded into the running statistics; in eval mode the running
// statistics are used.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.NumDims() != 4 || x.Dim(1) != bn.C {
		panic(fmt.Sprintf("nn: BatchNorm2D expects NCHW with C=%d, got %v", bn.C, x.Shape()))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	plane := h * w
	m := n * plane
	out := tensor.New(x.Shape()...)
	runningMean := bn.rmean.W.Data()
	runningVar := bn.rvar.W.Data()
	if train {
		xhat := tensor.New(x.Shape()...)
		invStd := make([]float32, bn.C)
		for c := 0; c < bn.C; c++ {
			// batch mean/var for channel c
			var sum, sumSq float64
			for s := 0; s < n; s++ {
				base := (s*bn.C + c) * plane
				for i := base; i < base+plane; i++ {
					v := float64(x.Data()[i])
					sum += v
					sumSq += v * v
				}
			}
			mean := sum / float64(m)
			variance := sumSq/float64(m) - mean*mean
			if variance < 0 {
				variance = 0
			}
			is := float32(1 / math.Sqrt(variance+float64(bn.Eps)))
			invStd[c] = is
			runningMean[c] = (1-bn.Momentum)*runningMean[c] + bn.Momentum*float32(mean)
			runningVar[c] = (1-bn.Momentum)*runningVar[c] + bn.Momentum*float32(variance)
			g, b := bn.gamma.W.Data()[c], bn.beta.W.Data()[c]
			mf := float32(mean)
			for s := 0; s < n; s++ {
				base := (s*bn.C + c) * plane
				for i := base; i < base+plane; i++ {
					xh := (x.Data()[i] - mf) * is
					xhat.Data()[i] = xh
					out.Data()[i] = g*xh + b
				}
			}
		}
		bn.lastXHat = xhat
		bn.lastInvStd = invStd
		bn.lastShape = append(bn.lastShape[:0], x.Shape()...)
		return out
	}
	for c := 0; c < bn.C; c++ {
		is := float32(1 / math.Sqrt(float64(runningVar[c])+float64(bn.Eps)))
		g, b := bn.gamma.W.Data()[c], bn.beta.W.Data()[c]
		mf := runningMean[c]
		for s := 0; s < n; s++ {
			base := (s*bn.C + c) * plane
			for i := base; i < base+plane; i++ {
				out.Data()[i] = g*(x.Data()[i]-mf)*is + b
			}
		}
	}
	return out
}

// Backward implements the standard batch-norm gradient:
// dx = gamma*invStd/m * (m*dy - sum(dy) - xhat*sum(dy*xhat)).
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if bn.lastXHat == nil {
		panic("nn: BatchNorm2D.Backward before Forward(train=true)")
	}
	n, h, w := bn.lastShape[0], bn.lastShape[2], bn.lastShape[3]
	plane := h * w
	m := float32(n * plane)
	gradIn := tensor.New(bn.lastShape...)
	for c := 0; c < bn.C; c++ {
		var sumDy, sumDyXhat float64
		for s := 0; s < n; s++ {
			base := (s*bn.C + c) * plane
			for i := base; i < base+plane; i++ {
				dy := float64(grad.Data()[i])
				sumDy += dy
				sumDyXhat += dy * float64(bn.lastXHat.Data()[i])
			}
		}
		bn.beta.Grad.Data()[c] += float32(sumDy)
		bn.gamma.Grad.Data()[c] += float32(sumDyXhat)
		g := bn.gamma.W.Data()[c]
		is := bn.lastInvStd[c]
		k := g * is / m
		sd, sdx := float32(sumDy), float32(sumDyXhat)
		for s := 0; s < n; s++ {
			base := (s*bn.C + c) * plane
			for i := base; i < base+plane; i++ {
				dy := grad.Data()[i]
				xh := bn.lastXHat.Data()[i]
				gradIn.Data()[i] = k * (m*dy - sd - xh*sdx)
			}
		}
	}
	return gradIn
}

// RunningStats exposes the running mean and variance (for tests and
// serialization).
func (bn *BatchNorm2D) RunningStats() (mean, variance []float32) {
	return bn.rmean.W.Data(), bn.rvar.W.Data()
}
