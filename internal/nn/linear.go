package nn

import (
	"fmt"
	"math/rand"

	"fhdnn/internal/tensor"
)

// Linear is a fully connected layer: y = x W^T + b over [batch, in] inputs.
// Weights are stored [out, in].
type Linear struct {
	In, Out   int
	weight    *Param
	bias      *Param
	lastInput *tensor.Tensor
}

// NewLinear constructs a dense layer with He-initialized weights and zero
// bias.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	w := tensor.Randn(rng, kaimingStd(in), out, in)
	return &Linear{
		In: in, Out: out,
		weight: NewParam("linear_w", w, false),
		bias:   NewParam("linear_b", tensor.New(out), true),
	}
}

// Params returns the weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.weight, l.bias} }

// Forward computes x W^T + b.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.NumDims() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Linear expects [batch %d], got %v", l.In, x.Shape()))
	}
	out := tensor.MatMulTransB(x, l.weight.W) // [n, out]
	n := x.Dim(0)
	for s := 0; s < n; s++ {
		row := out.Data()[s*l.Out : (s+1)*l.Out]
		for i, b := range l.bias.W.Data() {
			row[i] += b
		}
	}
	if train {
		l.lastInput = x
	}
	return out
}

// Backward accumulates gradients and returns dL/dx = grad W.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.lastInput == nil {
		panic("nn: Linear.Backward before Forward(train=true)")
	}
	// dW += grad^T [out, n] * x [n, in], accumulated directly into the
	// gradient buffer by the blocked kernel.
	tensor.MatMulTransAAccum(l.weight.Grad, grad, l.lastInput)
	n := grad.Dim(0)
	for s := 0; s < n; s++ {
		row := grad.Data()[s*l.Out : (s+1)*l.Out]
		for i, v := range row {
			l.bias.Grad.Data()[i] += v
		}
	}
	return tensor.MatMul(grad, l.weight.W)
}

// Flatten reshapes NCHW batches to [batch, C*H*W]. It is shape bookkeeping
// only; storage is shared.
type Flatten struct {
	lastShape []int
}

// Forward flattens all non-batch dimensions.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.lastShape = append(f.lastShape[:0], x.Shape()...)
	}
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward restores the original shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.lastShape...)
}

// Params returns nil; Flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }
