package nn

import (
	"fmt"

	"fhdnn/internal/tensor"
)

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	mask []bool
}

// Forward applies the rectifier.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	if train {
		if cap(r.mask) < x.Len() {
			r.mask = make([]bool, x.Len())
		}
		r.mask = r.mask[:x.Len()]
	}
	for i, v := range x.Data() {
		if v > 0 {
			out.Data()[i] = v
			if train {
				r.mask[i] = true
			}
		} else if train {
			r.mask[i] = false
		}
	}
	return out
}

// Backward zeroes the gradient where the input was non-positive.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(r.mask) != grad.Len() {
		panic("nn: ReLU.Backward before Forward(train=true)")
	}
	out := tensor.New(grad.Shape()...)
	for i, v := range grad.Data() {
		if r.mask[i] {
			out.Data()[i] = v
		}
	}
	return out
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// MaxPool2D applies k x k max pooling with stride k over NCHW batches.
type MaxPool2D struct {
	K          int
	lastArgmax []int32
	lastShape  []int
}

// NewMaxPool2D constructs a pooling layer with window and stride k.
func NewMaxPool2D(k int) *MaxPool2D { return &MaxPool2D{K: k} }

// Forward pools each image in the batch.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.NumDims() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D expects NCHW, got %v", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outH := (h-p.K)/p.K + 1
	outW := (w-p.K)/p.K + 1
	out := tensor.New(n, c, outH, outW)
	if train {
		p.lastArgmax = make([]int32, n*c*outH*outW)
		p.lastShape = append(p.lastShape[:0], x.Shape()...)
	}
	imgLen := c * h * w
	outLen := c * outH * outW
	tensor.ParallelFor(n, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			seg := out.Data()[s*outLen : (s+1)*outLen]
			var am []int32
			if train {
				am = p.lastArgmax[s*outLen : (s+1)*outLen]
			}
			tensor.MaxPool2DInto(x.Data()[s*imgLen:(s+1)*imgLen], c, h, w, p.K, p.K, seg, am)
			if train {
				for i := range am {
					am[i] += int32(s * imgLen)
				}
			}
		}
	})
	return out
}

// Backward scatters each output gradient to its argmax input position.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.lastArgmax == nil {
		panic("nn: MaxPool2D.Backward before Forward(train=true)")
	}
	gradIn := tensor.New(p.lastShape...)
	for i, a := range p.lastArgmax {
		gradIn.Data()[a] += grad.Data()[i]
	}
	return gradIn
}

// Params returns nil; pooling has no parameters.
func (p *MaxPool2D) Params() []*Param { return nil }

// AvgPool2D applies k x k average pooling with stride k over NCHW batches.
type AvgPool2D struct {
	K         int
	lastShape []int
}

// NewAvgPool2D constructs an average-pooling layer with window and stride k.
func NewAvgPool2D(k int) *AvgPool2D { return &AvgPool2D{K: k} }

// Forward averages each k x k window.
func (p *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.NumDims() != 4 {
		panic(fmt.Sprintf("nn: AvgPool2D expects NCHW, got %v", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outH, outW := h/p.K, w/p.K
	out := tensor.New(n, c, outH, outW)
	inv := 1 / float32(p.K*p.K)
	tensor.ParallelFor(n, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			for ch := 0; ch < c; ch++ {
				inBase := (s*c + ch) * h * w
				outBase := (s*c + ch) * outH * outW
				for oy := 0; oy < outH; oy++ {
					for ox := 0; ox < outW; ox++ {
						sum := float32(0)
						for ky := 0; ky < p.K; ky++ {
							row := inBase + (oy*p.K+ky)*w + ox*p.K
							for kx := 0; kx < p.K; kx++ {
								sum += x.Data()[row+kx]
							}
						}
						out.Data()[outBase+oy*outW+ox] = sum * inv
					}
				}
			}
		}
	})
	if train {
		p.lastShape = append(p.lastShape[:0], x.Shape()...)
	}
	return out
}

// Backward spreads each output gradient uniformly over its window.
func (p *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.lastShape == nil {
		panic("nn: AvgPool2D.Backward before Forward(train=true)")
	}
	n, c, h, w := p.lastShape[0], p.lastShape[1], p.lastShape[2], p.lastShape[3]
	outH, outW := h/p.K, w/p.K
	gradIn := tensor.New(p.lastShape...)
	inv := 1 / float32(p.K*p.K)
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			inBase := (s*c + ch) * h * w
			outBase := (s*c + ch) * outH * outW
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					g := grad.Data()[outBase+oy*outW+ox] * inv
					for ky := 0; ky < p.K; ky++ {
						row := inBase + (oy*p.K+ky)*w + ox*p.K
						for kx := 0; kx < p.K; kx++ {
							gradIn.Data()[row+kx] += g
						}
					}
				}
			}
		}
	}
	return gradIn
}

// Params returns nil; pooling has no parameters.
func (p *AvgPool2D) Params() []*Param { return nil }

// GlobalAvgPool reduces NCHW to [batch, C] by averaging each channel plane.
type GlobalAvgPool struct {
	lastShape []int
}

// Forward averages each channel plane.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.NumDims() != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool expects NCHW, got %v", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	out := tensor.New(n, c)
	imgLen := c * h * w
	tensor.ParallelFor(n, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			tensor.GlobalAvgPoolInto(x.Data()[s*imgLen:(s+1)*imgLen], c, h, w, out.Data()[s*c:(s+1)*c])
		}
	})
	if train {
		p.lastShape = append(p.lastShape[:0], x.Shape()...)
	}
	return out
}

// Backward spreads each channel gradient uniformly over its plane.
func (p *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.lastShape == nil {
		panic("nn: GlobalAvgPool.Backward before Forward(train=true)")
	}
	n, c, h, w := p.lastShape[0], p.lastShape[1], p.lastShape[2], p.lastShape[3]
	gradIn := tensor.New(p.lastShape...)
	inv := 1 / float32(h*w)
	plane := h * w
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			g := grad.Data()[s*c+ch] * inv
			base := (s*c + ch) * plane
			for i := base; i < base+plane; i++ {
				gradIn.Data()[i] = g
			}
		}
	}
	return gradIn
}

// Params returns nil; pooling has no parameters.
func (p *GlobalAvgPool) Params() []*Param { return nil }
