package nn

import (
	"math/rand"
	"testing"

	"fhdnn/internal/tensor"
)

func BenchmarkConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(rng, 16, 32, 3, 1, 1, false)
	x := tensor.Randn(rng, 1, 8, 16, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(x, false)
	}
}

func BenchmarkConv2DTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D(rng, 8, 16, 3, 1, 1, false)
	x := tensor.Randn(rng, 1, 4, 8, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ZeroGrad(c.Params())
		y := c.Forward(x, true)
		c.Backward(y)
	}
}

func BenchmarkBatchNormForward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	bn := NewBatchNorm2D(32)
	x := tensor.Randn(rng, 1, 8, 32, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bn.Forward(x, true)
	}
}

func BenchmarkResNetTinyForward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	net := NewResNet(rng, TinyResNet18(3, 10))
	x := tensor.Randn(rng, 1, 4, 3, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func BenchmarkResNetTinyTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	net := NewResNet(rng, TinyResNet18(3, 10))
	x := tensor.Randn(rng, 1, 4, 3, 16, 16)
	labels := []int{0, 1, 2, 3}
	opt := NewSGD(0.05, 0.9, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ZeroGrad(net.Params())
		logits := net.Forward(x, true)
		_, grad := CrossEntropy(logits, labels)
		net.Backward(grad)
		opt.Step(net.Params())
	}
}

func BenchmarkNTXent(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	z := tensor.Randn(rng, 1, 32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NTXent(z, 0.5)
	}
}

func BenchmarkFlattenParams(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	net := NewResNet(rng, TinyResNet18(3, 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FlattenParams(net.Params())
	}
}
