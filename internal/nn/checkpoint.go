package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Checkpointing for network parameters: a little-endian stream of the
// parameter count, then per parameter its length and float32 payload.
// BatchNorm running statistics are included automatically because they are
// exposed through Params().

var checkpointMagic = [4]byte{'F', 'H', 'D', 'N'}

// SaveParams writes all parameter tensors to w.
func SaveParams(w io.Writer, params []*Param) error {
	if _, err := w.Write(checkpointMagic[:]); err != nil {
		return fmt.Errorf("nn: write checkpoint header: %w", err)
	}
	var count [4]byte
	binary.LittleEndian.PutUint32(count[:], uint32(len(params)))
	if _, err := w.Write(count[:]); err != nil {
		return fmt.Errorf("nn: write checkpoint count: %w", err)
	}
	for i, p := range params {
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(p.W.Len()))
		if _, err := w.Write(lenBuf[:]); err != nil {
			return fmt.Errorf("nn: write param %d length: %w", i, err)
		}
		buf := make([]byte, 4*p.W.Len())
		for j, v := range p.W.Data() {
			binary.LittleEndian.PutUint32(buf[4*j:], math.Float32bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("nn: write param %d payload: %w", i, err)
		}
	}
	return nil
}

// LoadParams reads a checkpoint written by SaveParams into params. The
// parameter list must describe the identical architecture: count and
// per-parameter lengths are validated.
func LoadParams(r io.Reader, params []*Param) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("nn: read checkpoint header: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("nn: bad checkpoint magic %q", magic[:])
	}
	var count [4]byte
	if _, err := io.ReadFull(r, count[:]); err != nil {
		return fmt.Errorf("nn: read checkpoint count: %w", err)
	}
	if got := int(binary.LittleEndian.Uint32(count[:])); got != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", got, len(params))
	}
	for i, p := range params {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return fmt.Errorf("nn: read param %d length: %w", i, err)
		}
		if got := int(binary.LittleEndian.Uint32(lenBuf[:])); got != p.W.Len() {
			return fmt.Errorf("nn: param %d (%s) has %d values in checkpoint, want %d",
				i, p.Name, got, p.W.Len())
		}
		buf := make([]byte, 4*p.W.Len())
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("nn: read param %d payload: %w", i, err)
		}
		for j := range p.W.Data() {
			p.W.Data()[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
	}
	return nil
}
