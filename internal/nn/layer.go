// Package nn is a from-scratch neural-network framework: layers with explicit
// forward/backward passes, losses, and an SGD optimizer. It exists because
// the FHDnn paper's baselines (a 2-conv MNIST CNN and ResNet-18 trained with
// FedAvg) require CNN training, and no deep-learning framework is available
// in the Go standard library.
//
// Tensors flow through layers in NCHW layout for convolutional stages and
// [batch, features] for dense stages. Layers cache whatever they need during
// Forward and consume it in Backward; a layer must therefore not be shared
// between concurrent training loops.
package nn

import (
	"math"

	"fhdnn/internal/tensor"
)

// Param is one trainable parameter tensor together with its gradient
// accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
	// NoDecay excludes the parameter from weight decay (biases and
	// normalization affine parameters, following common practice).
	NoDecay bool
}

// NewParam allocates a parameter and matching zero gradient.
func NewParam(name string, w *tensor.Tensor, noDecay bool) *Param {
	return &Param{Name: name, W: w, Grad: tensor.New(w.Shape()...), NoDecay: noDecay}
}

// Layer is one differentiable stage of a network.
type Layer interface {
	// Forward computes the layer output for a batch. train selects
	// training-mode behaviour (e.g. batch statistics in BatchNorm).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient w.r.t. the layer output, accumulates
	// parameter gradients, and returns the gradient w.r.t. the input.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// Sequential chains layers; the output of each feeds the next.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs all layers in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns the parameters of all layers, in order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears the gradients of all given parameters.
func ZeroGrad(params []*Param) {
	for _, p := range params {
		p.Grad.Zero()
	}
}

// NumParams returns the total number of scalar parameters.
func NumParams(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.W.Len()
	}
	return n
}

// kaimingStd returns the He-initialization standard deviation for a layer
// with the given fan-in.
func kaimingStd(fanIn int) float64 {
	if fanIn <= 0 {
		return 1
	}
	return math.Sqrt(2 / float64(fanIn))
}
