package nn

import (
	"math"
	"math/rand"
	"testing"

	"fhdnn/internal/tensor"
)

func TestAdamFirstStepIsSignedLR(t *testing.T) {
	// On the first step, mHat/sqrt(vHat) = g/|g| (eps aside), so the update
	// is ~lr*sign(g).
	p := NewParam("w", tensor.FromSlice([]float32{0, 0}, 2), false)
	p.Grad.Data()[0] = 3
	p.Grad.Data()[1] = -0.001
	opt := NewAdam(0.1, 0)
	opt.Step([]*Param{p})
	if math.Abs(float64(p.W.Data()[0])+0.1) > 1e-4 {
		t.Fatalf("w0 = %v, want ~-0.1", p.W.Data()[0])
	}
	if math.Abs(float64(p.W.Data()[1])-0.1) > 1e-3 {
		t.Fatalf("w1 = %v, want ~+0.1", p.W.Data()[1])
	}
}

func TestAdamWeightDecaySkipsNoDecay(t *testing.T) {
	w1 := NewParam("w", tensor.FromSlice([]float32{1}, 1), false)
	w2 := NewParam("b", tensor.FromSlice([]float32{1}, 1), true)
	opt := NewAdam(0.1, 0.5)
	opt.Step([]*Param{w1, w2}) // zero grads: only decay acts
	if math.Abs(float64(w1.W.Data()[0])-0.95) > 1e-6 {
		t.Fatalf("decayed = %v, want 0.95", w1.W.Data()[0])
	}
	if w2.W.Data()[0] != 1 {
		t.Fatalf("NoDecay changed: %v", w2.W.Data()[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// minimize (w-3)^2: gradient 2(w-3)
	p := NewParam("w", tensor.FromSlice([]float32{0}, 1), false)
	opt := NewAdam(0.1, 0)
	for i := 0; i < 500; i++ {
		p.Grad.Data()[0] = 2 * (p.W.Data()[0] - 3)
		opt.Step([]*Param{p})
	}
	if math.Abs(float64(p.W.Data()[0])-3) > 0.05 {
		t.Fatalf("converged to %v, want 3", p.W.Data()[0])
	}
	opt.Reset()
	if opt.step != 0 {
		t.Fatal("Reset must clear the step counter")
	}
}

func TestAdamTrainsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewSequential(NewLinear(rng, 2, 16), &ReLU{}, NewLinear(rng, 16, 2))
	xs := []float32{0, 0, 0, 1, 1, 0, 1, 1}
	labels := []int{0, 1, 1, 0}
	x := tensor.FromSlice(xs, 4, 2)
	opt := NewAdam(0.02, 0)
	for it := 0; it < 400; it++ {
		ZeroGrad(net.Params())
		logits := net.Forward(x, true)
		_, grad := CrossEntropy(logits, labels)
		net.Backward(grad)
		opt.Step(net.Params())
	}
	if acc := Accuracy(net.Forward(x, false), labels); acc < 1 {
		t.Fatalf("Adam failed XOR: %v", acc)
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDropout(0.5, rng)
	x := tensor.FromSlice([]float32{1, 2, 3}, 3)
	y := d.Forward(x, false)
	for i := range x.Data() {
		if y.Data()[i] != x.Data()[i] {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
}

func TestDropoutPreservesExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDropout(0.3, rng)
	x := tensor.Full(1, 10000)
	y := d.Forward(x, true)
	if m := y.Mean(); math.Abs(m-1) > 0.05 {
		t.Fatalf("inverted dropout mean %v, want ~1", m)
	}
	zeros := 0
	for _, v := range y.Data() {
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(y.Len())
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("drop fraction %v, want ~0.3", frac)
	}
}

func TestDropoutBackwardMasksGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDropout(0.5, rng)
	x := tensor.Full(1, 100)
	y := d.Forward(x, true)
	g := d.Backward(tensor.Full(1, 100))
	for i := range y.Data() {
		if (y.Data()[i] == 0) != (g.Data()[i] == 0) {
			t.Fatal("gradient mask must match forward mask")
		}
	}
}

func TestDropoutValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=1")
		}
	}()
	NewDropout(1, nil)
}

func TestDropoutNilRngPanicsInTraining(t *testing.T) {
	d := NewDropout(0.5, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Forward(tensor.New(2), true)
}

func TestDropoutZeroPIsTransparent(t *testing.T) {
	d := NewDropout(0, nil)
	x := tensor.FromSlice([]float32{5}, 1)
	if d.Forward(x, true).Data()[0] != 5 {
		t.Fatal("p=0 must be identity")
	}
	if d.Backward(x).Data()[0] != 5 {
		t.Fatal("p=0 backward must be identity")
	}
}
