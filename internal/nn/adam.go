package nn

import (
	"math"

	"fhdnn/internal/tensor"
)

// Adam is the Adam optimizer (Kingma & Ba, 2015) with decoupled weight
// decay (AdamW-style: decay is applied to the weights directly, not mixed
// into the moment estimates).
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	step int
	m    map[*Param]*tensor.Tensor
	v    map[*Param]*tensor.Tensor
}

// NewAdam constructs an optimizer with the conventional defaults
// beta1=0.9, beta2=0.999, eps=1e-8.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		m: make(map[*Param]*tensor.Tensor),
		v: make(map[*Param]*tensor.Tensor),
	}
}

// Step applies one Adam update to every parameter.
func (o *Adam) Step(params []*Param) {
	o.step++
	b1c := 1 - math.Pow(o.Beta1, float64(o.step))
	b2c := 1 - math.Pow(o.Beta2, float64(o.step))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = tensor.New(p.W.Shape()...)
			o.m[p] = m
			o.v[p] = tensor.New(p.W.Shape()...)
		}
		v := o.v[p]
		w := p.W.Data()
		g := p.Grad.Data()
		md := m.Data()
		vd := v.Data()
		for i := range w {
			gi := float64(g[i])
			md[i] = float32(o.Beta1*float64(md[i]) + (1-o.Beta1)*gi)
			vd[i] = float32(o.Beta2*float64(vd[i]) + (1-o.Beta2)*gi*gi)
			mHat := float64(md[i]) / b1c
			vHat := float64(vd[i]) / b2c
			upd := o.LR * mHat / (math.Sqrt(vHat) + o.Eps)
			if o.WeightDecay != 0 && !p.NoDecay {
				upd += o.LR * o.WeightDecay * float64(w[i])
			}
			w[i] -= float32(upd)
		}
	}
}

// Reset clears the moment estimates and step counter.
func (o *Adam) Reset() {
	o.step = 0
	o.m = make(map[*Param]*tensor.Tensor)
	o.v = make(map[*Param]*tensor.Tensor)
}

// Optimizer is satisfied by both SGD and Adam, so training loops can take
// either.
type Optimizer interface {
	Step(params []*Param)
}

var (
	_ Optimizer = (*SGD)(nil)
	_ Optimizer = (*Adam)(nil)
)
