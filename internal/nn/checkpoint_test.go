package nn

import (
	"bytes"
	"math/rand"
	"testing"

	"fhdnn/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewSequential(
		NewConv2D(rng, 1, 4, 3, 1, 1, true),
		NewBatchNorm2D(4),
		&ReLU{},
		&Flatten{},
		NewLinear(rng, 4*8*8, 3),
	)
	// drive BN stats away from init so they are exercised too
	x := tensor.Randn(rng, 2, 4, 1, 8, 8)
	net.Forward(x, true)

	var buf bytes.Buffer
	if err := SaveParams(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	want := FlattenParams(net.Params())

	net2 := NewSequential(
		NewConv2D(rng, 1, 4, 3, 1, 1, true),
		NewBatchNorm2D(4),
		&ReLU{},
		&Flatten{},
		NewLinear(rng, 4*8*8, 3),
	)
	if err := LoadParams(&buf, net2.Params()); err != nil {
		t.Fatal(err)
	}
	got := FlattenParams(net2.Params())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("checkpoint mismatch at %d", i)
		}
	}
	// behavioural equality in eval mode (BN buffers restored)
	y1 := net.Forward(x, false)
	y2 := net2.Forward(x, false)
	if !y1.Equal(y2, 0) {
		t.Fatal("restored network behaves differently")
	}
}

func TestLoadParamsBadMagic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewSequential(NewLinear(rng, 2, 2))
	if err := LoadParams(bytes.NewReader([]byte("NOPE0000")), net.Params()); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadParamsCountMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewSequential(NewLinear(rng, 2, 2))
	b := NewSequential(NewLinear(rng, 2, 2), NewLinear(rng, 2, 2))
	var buf bytes.Buffer
	if err := SaveParams(&buf, a.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, b.Params()); err == nil {
		t.Fatal("expected error for parameter count mismatch")
	}
}

func TestLoadParamsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewSequential(NewLinear(rng, 2, 2))
	b := NewSequential(NewLinear(rng, 3, 3))
	var buf bytes.Buffer
	if err := SaveParams(&buf, a.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, b.Params()); err == nil {
		t.Fatal("expected error for shape mismatch")
	}
}

func TestLoadParamsTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewSequential(NewLinear(rng, 4, 4))
	var buf bytes.Buffer
	if err := SaveParams(&buf, net.Params()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-3]
	if err := LoadParams(bytes.NewReader(data), net.Params()); err == nil {
		t.Fatal("expected error for truncated checkpoint")
	}
}
