package nn

import (
	"math/rand"

	"fhdnn/internal/tensor"
)

// Dropout zeroes each activation with probability P during training and
// scales survivors by 1/(1-P) (inverted dropout), so evaluation needs no
// rescaling. A nil Rng panics at first training-mode Forward; share one
// per training loop for reproducibility.
type Dropout struct {
	P   float64
	Rng *rand.Rand

	mask []float32
}

// NewDropout constructs a dropout layer.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0,1)")
	}
	return &Dropout{P: p, Rng: rng}
}

// Forward applies dropout in training mode and is the identity in eval.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		return x
	}
	if d.Rng == nil {
		panic("nn: Dropout needs an Rng for training")
	}
	out := tensor.New(x.Shape()...)
	if cap(d.mask) < x.Len() {
		d.mask = make([]float32, x.Len())
	}
	d.mask = d.mask[:x.Len()]
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data() {
		if d.Rng.Float64() < d.P {
			d.mask[i] = 0
		} else {
			d.mask[i] = scale
			out.Data()[i] = v * scale
		}
	}
	return out
}

// Backward passes gradients through the surviving units only.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.P == 0 {
		return grad
	}
	if len(d.mask) != grad.Len() {
		panic("nn: Dropout.Backward before Forward(train=true)")
	}
	out := tensor.New(grad.Shape()...)
	for i, g := range grad.Data() {
		out.Data()[i] = g * d.mask[i]
	}
	return out
}

// Params returns nil; dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }
