// Non-IID data: sweep the skew of the client data distribution — from the
// pathological two-shards-per-client split of McMahan et al. through
// Dirichlet partitions of decreasing concentration — and watch how FHDnn's
// federated bundling copes compared to CNN FedAvg.
//
// Run with: go run ./examples/noniid
package main

import (
	"fmt"
	"math/rand"

	"fhdnn/internal/core"
	"fhdnn/internal/dataset"
	"fhdnn/internal/experiments"
)

func main() {
	s := experiments.Small()
	s.Seed = 11
	s.Rounds = 10

	train, test := s.BuildDataset("cifar10")

	type split struct {
		name string
		part dataset.Partition
	}
	rng := rand.New(rand.NewSource(s.Seed))
	splits := []split{
		{"IID", dataset.PartitionIID(train.Len(), s.NumClients, rng)},
		{"Dirichlet alpha=1.0", dataset.PartitionDirichlet(train.Labels, s.NumClients, 1.0, rng)},
		{"Dirichlet alpha=0.1", dataset.PartitionDirichlet(train.Labels, s.NumClients, 0.1, rng)},
		{"2 shards/client", dataset.PartitionShards(train.Labels, s.NumClients, 2, rng)},
	}

	fmt.Printf("%d clients, %d rounds, E=2 C=0.2 B=10, CIFAR-like data\n", s.NumClients, s.Rounds)
	fmt.Printf("%-22s  %-12s  %-10s  %-10s\n", "split", "skew", "FHDnn", "CNN")
	for _, sp := range splits {
		skew := maxClassShare(sp.part, train.Labels, train.NumClasses)

		f := s.NewFHDnn(train)
		hd := f.TrainFederated(train, test, sp.part, s.FLConfig(s.Seed))

		baseline := s.NewCNNBaseline("cifar10", train)
		cnnHist, _ := core.TrainFederatedCNN(baseline, train, test, sp.part, s.FLConfig(s.Seed))

		fmt.Printf("%-22s  %-12.2f  %-10.3f  %-10.3f\n",
			sp.name, skew, hd.History.FinalAccuracy(), cnnHist.FinalAccuracy())
	}
	fmt.Println("\nskew = mean per-client share of its most common class (0.1 = balanced, 1.0 = single-class clients)")
}

// maxClassShare measures distribution skew: the average, over clients, of
// the fraction of a client's data belonging to its most common class.
func maxClassShare(p dataset.Partition, labels []int, numClasses int) float64 {
	hist := dataset.LabelHistogram(p, labels, numClasses)
	total := 0.0
	counted := 0
	for _, h := range hist {
		sum, max := 0, 0
		for _, n := range h {
			sum += n
			if n > max {
				max = n
			}
		}
		if sum > 0 {
			total += float64(max) / float64(sum)
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
