// Classic hyperdimensional computing: FHDnn's learner sits on top of a
// general HDC toolbox (binding, bundling, permutation, item/level
// memories), and this example exercises that toolbox directly on two
// problems that don't involve a CNN at all:
//
//  1. tabular classification with record-based encoding
//     (ID (x) Level(value), bundled over features), and
//  2. sequence classification with permutation n-grams, where the encoder
//     distinguishes "which symbols" from "in which order".
//
// Run with: go run ./examples/hdclassic
package main

import (
	"fmt"
	"math/rand"

	"fhdnn/internal/dataset"
	"fhdnn/internal/hdc"
	"fhdnn/internal/tensor"
)

func main() {
	tabular()
	sequences()
}

// tabular classifies the ISOLET-like dataset with the record encoder.
func tabular() {
	const d = 8192
	train := dataset.GenerateVectors(dataset.VectorConfig{
		Name: "isolet", Classes: 26, Features: 617, PerClass: 12,
		ClassStd: 1, SampleStd: 0.5, Seed: 5,
	})
	test := dataset.GenerateVectors(dataset.VectorConfig{
		Name: "isolet", Classes: 26, Features: 617, PerClass: 4,
		ClassStd: 1, SampleStd: 0.5, Seed: 5,
	})
	enc := hdc.NewRecordEncoder(1, d, 32, -4, 4)

	encode := func(ds *dataset.Dataset) *tensor.Tensor {
		out := tensor.New(ds.Len(), d)
		for i := 0; i < ds.Len(); i++ {
			h := enc.Encode(ds.X.Data()[i*617 : (i+1)*617])
			copy(out.Data()[i*d:(i+1)*d], h)
		}
		return out
	}
	encTrain, encTest := encode(train), encode(test)

	m := hdc.NewModel(26, d)
	m.OneShotTrain(encTrain, train.Labels)
	oneShot := m.Accuracy(encTest, test.Labels)
	for e := 0; e < 5; e++ {
		m.RefineEpoch(encTrain, train.Labels)
	}
	fmt.Println("record-based encoding on ISOLET-like data (26 classes):")
	fmt.Printf("  one-shot accuracy: %.3f    after refinement: %.3f  (chance %.3f)\n\n",
		oneShot, m.Accuracy(encTest, test.Labels), 1.0/26)
}

// sequences classifies symbol streams by their generating grammar using
// n-gram encoding: class 0 emits ascending runs, class 1 descending runs,
// class 2 alternating pairs. All three use the same symbols — only order
// separates them.
func sequences() {
	const (
		d       = 8192
		symbols = 8
		seqLen  = 24
		perCls  = 30
	)
	rng := rand.New(rand.NewSource(9))
	gen := func(class int) []int {
		seq := make([]int, seqLen)
		start := rng.Intn(symbols)
		for i := range seq {
			switch class {
			case 0:
				seq[i] = (start + i) % symbols
			case 1:
				seq[i] = (start - i + 8*seqLen) % symbols
			default:
				seq[i] = (start + (i%2)*3) % symbols
			}
		}
		return seq
	}

	enc := hdc.NewSequenceEncoder(2, d, 3)
	encodeSet := func(n int) (*tensor.Tensor, []int) {
		x := tensor.New(3*n, d)
		labels := make([]int, 3*n)
		for c := 0; c < 3; c++ {
			for s := 0; s < n; s++ {
				i := c*n + s
				labels[i] = c
				copy(x.Data()[i*d:(i+1)*d], enc.Encode(gen(c)))
			}
		}
		return x, labels
	}
	trainX, trainY := encodeSet(perCls)
	testX, testY := encodeSet(perCls / 3)

	m := hdc.NewModel(3, d)
	m.OneShotTrain(trainX, trainY)
	for e := 0; e < 5; e++ {
		m.RefineEpoch(trainX, trainY)
	}
	fmt.Println("permutation n-gram encoding on symbol sequences (order matters):")
	fmt.Printf("  accuracy: %.3f  (chance 0.333)\n", m.Accuracy(testX, testY))

	// show the order sensitivity directly
	up := enc.Encode([]int{0, 1, 2, 3, 4, 5})
	down := enc.Encode([]int{5, 4, 3, 2, 1, 0})
	up2 := enc.Encode([]int{2, 3, 4, 5, 6, 7})
	fmt.Printf("  cos(ascending, ascending') = %.3f   cos(ascending, descending) = %.3f\n",
		hdc.Cosine(up, up2), hdc.Cosine(up, down))
}
