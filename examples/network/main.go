// Networked federated learning: start the flnet aggregation server on a
// loopback port and run five FHDnn clients against it over real HTTP —
// each round the clients download the global HD model, train locally
// (one-shot bundling + refinement), and upload their prototypes through a
// simulated 20% packet-loss uplink. This is the deployment shape of the
// paper (server broadcast assumed reliable, client uplink lossy), executed
// on the actual wire protocol rather than the in-process simulator.
//
// Run with: go run ./examples/network
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"fhdnn/internal/channel"
	"fhdnn/internal/core"
	"fhdnn/internal/dataset"
	"fhdnn/internal/flnet"
	"fhdnn/internal/tensor"
)

func main() {
	const (
		seed       = 21
		numClients = 5
		rounds     = 6
		imgSize    = 8
		hdDim      = 2048
	)

	// Data and the frozen pipeline, shared by seed.
	train, test := dataset.GenerateImages(dataset.CIFAR10Like(imgSize, 30, 12, seed))
	part := dataset.PartitionIID(train.Len(), numClients, rand.New(rand.NewSource(seed)))
	extractor := core.NewRandomConvExtractor(seed, 3, 8, imgSize)
	fhd := core.New(extractor, core.Config{HDDim: hdDim, NumClasses: 10, Seed: seed, Binarize: true})
	encoded := fhd.EncodeDataset(train)
	testEnc := fhd.EncodeDataset(test)

	// Aggregation server on loopback.
	srv, err := flnet.NewServer(flnet.ServerConfig{
		NumClasses: 10, Dim: hdDim, MinUpdates: numClients, MaxRounds: rounds,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
			log.Println("server:", err)
		}
	}()
	defer httpSrv.Close()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("aggregation server at %s, %d clients, %d rounds, 20%% packet loss uplink\n\n",
		baseURL, numClients, rounds)

	// Clients.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	d := hdDim
	for i := 0; i < numClients; i++ {
		idx := part[i]
		shard := tensor.New(len(idx), d)
		labels := make([]int, len(idx))
		for bi, j := range idx {
			copy(shard.Data()[bi*d:(bi+1)*d], encoded.Data()[j*d:(j+1)*d])
			labels[bi] = train.Labels[j]
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lt := &flnet.LocalTrainer{
				Client: &flnet.Client{
					BaseURL: baseURL,
					Uplink:  channel.PacketLoss{Rate: 0.2},
					Rng:     rand.New(rand.NewSource(int64(seed + i))),
				},
				Encoded: shard,
				Labels:  labels,
				Epochs:  2,
				Poll:    5 * time.Millisecond,
			}
			n, err := lt.Participate(ctx)
			if err != nil {
				log.Printf("client %d: %v", i, err)
				return
			}
			fmt.Printf("client %d contributed to %d rounds\n", i, n)
		}(i)
	}

	// Progress monitor.
	done := make(chan struct{})
	go func() {
		defer close(done)
		c := &flnet.Client{BaseURL: baseURL}
		last := 0
		for {
			info, err := c.Round(ctx)
			if err != nil {
				return
			}
			if info.Round != last {
				model, _ := srv.Model()
				fmt.Printf("  round %d starts, global accuracy so far: %.3f\n",
					info.Round, model.Accuracy(testEnc, test.Labels))
				last = info.Round
			}
			if info.Closed {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	wg.Wait()
	<-done
	global, _ := srv.Model()
	fmt.Printf("\nfinal global accuracy on held-out data: %.3f\n",
		global.Accuracy(testEnc, test.Labels))
	fmt.Printf("per-round update size: %d KB per client\n", global.UpdateSizeBytes(4)/1024)
}
