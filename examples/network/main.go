// Networked federated learning under faults: start the flnet aggregation
// server on a loopback port and run eight FHDnn clients against it over
// real HTTP — each round the clients download the global HD model, train
// locally (one-shot bundling + refinement), and upload their prototypes
// as int8-compressed wire envelopes (negotiated via the X-FHDnn-Codecs
// handshake, ~4x fewer uplink bytes than raw float32) through a simulated
// 20% packet-loss uplink. On top of the lossy radio,
// every client's HTTP transport injects 30% connection failures plus
// truncated responses (internal/faults), one client dies after round 2,
// and a poisoner submits a NaN update each round; the server's round
// deadline, update quarantine, and the clients' retry loops keep training
// on track anyway. This is the deployment shape of the paper (server
// broadcast assumed reliable, client uplink lossy), executed on the
// actual wire protocol with the failure modes of a real AIoT fleet.
//
// Run with: go run ./examples/network
//
// The Byzantine variant adds model poisoning on top of the channel
// chaos: -poison arms a fraction (-poisoners) of the fleet with an
// attack from internal/faults (they train honestly, then corrupt the
// upload), and -aggregator switches the server's commit rule to a
// robust policy. Under everything at once — packet loss, transport
// faults, a crash, and 40% colluding unlearners — the mean-based bundle
// collapses to chance while the median keeps the model several times
// above it (clean separations live in the flnet chaos tests and
// EXPERIMENTS.md; this demo is the kitchen sink):
//
//	go run ./examples/network -poison scale:-2 -poisoners 0.4 -aggregator median
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"fhdnn/internal/channel"
	"fhdnn/internal/compress"
	"fhdnn/internal/core"
	"fhdnn/internal/dataset"
	"fhdnn/internal/faults"
	"fhdnn/internal/fedcore"
	"fhdnn/internal/flnet"
	"fhdnn/internal/hdc"
	"fhdnn/internal/tensor"
)

func main() {
	aggSpec := flag.String("aggregator", "bundle", "server commit rule: bundle, fedavg, median, trimmed[:frac], clip:bound[:inner]")
	shards := flag.Int("shards", 2, "server aggregation shards (uploads hash-route to per-shard goroutines)")
	poisonSpec := flag.String("poison", "", "arm colluding clients with this attack: signflip, scale:L, noise:S, drift:L")
	poisonFrac := flag.Float64("poisoners", 0.4, "fraction of clients that collude (only with -poison)")
	flag.Parse()

	const (
		seed       = 21
		numClients = 8
		rounds     = 6
		imgSize    = 8
		hdDim      = 2048
		failRate   = 0.3
	)
	crash := faults.CrashSchedule{3: 3} // client 3 dies during round 3

	agg, err := fedcore.ParseAggregator(*aggSpec)
	if err != nil {
		log.Fatal(err)
	}
	var attacker *faults.Poisoner
	colluders := map[int]bool{}
	if *poisonSpec != "" {
		attacker, err = faults.ParseAttack(*poisonSpec)
		if err != nil {
			log.Fatal(err)
		}
		attacker.Seed = seed
		colluders = faults.Colluders(seed, numClients, *poisonFrac)
	}

	// Data and the frozen pipeline, shared by seed.
	train, test := dataset.GenerateImages(dataset.CIFAR10Like(imgSize, 80, 12, seed))
	part := dataset.PartitionIID(train.Len(), numClients, rand.New(rand.NewSource(seed)))
	extractor := core.NewRandomConvExtractor(seed, 3, 8, imgSize)
	fhd := core.New(extractor, core.Config{HDDim: hdDim, NumClasses: 10, Seed: seed, Binarize: true})
	encoded := fhd.EncodeDataset(train)
	testEnc := fhd.EncodeDataset(test)

	// Aggregation server on loopback. MinUpdates asks for everyone, but
	// the deadline closes a round with whoever showed up, so the crashed
	// client cannot stall the federation.
	srv, err := flnet.NewServer(flnet.ServerConfig{
		NumClasses: 10, Dim: hdDim, MinUpdates: numClients, MaxRounds: rounds,
		RoundDeadline: 2 * time.Second, MaxUpdateNorm: 1e9,
		Aggregator: agg, Shards: *shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	//fhdnn:allow goroutine long-running HTTP serve loop for the demo, not data-parallel work
	go func() {
		if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
			log.Println("server:", err)
		}
	}()
	defer func() { _ = httpSrv.Close() }()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("aggregation server at %s: %d clients, %d rounds, %s aggregation, 20%% packet-loss uplink,\n",
		baseURL, numClients, rounds, fedcore.AggregatorName(agg))
	fmt.Printf("%.0f%% injected transport failures, client 3 crashes in round 3, NaN poisoner active\n", failRate*100.0)
	if attacker != nil {
		ids := make([]int, 0, len(colluders))
		for id := 0; id < numClients; id++ {
			if colluders[id] {
				ids = append(ids, id)
			}
		}
		fmt.Printf("Byzantine colluders %v poisoning every upload with %s\n", ids, attacker)
	}
	fmt.Println()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	d := hdDim
	for i := 0; i < numClients; i++ {
		idx := part[i]
		shard := tensor.New(len(idx), d)
		labels := make([]int, len(idx))
		for bi, j := range idx {
			copy(shard.Data()[bi*d:(bi+1)*d], encoded.Data()[j*d:(j+1)*d])
			labels[bi] = train.Labels[j]
		}
		wg.Add(1)
		//fhdnn:allow goroutine concurrent client actor for the network demo, joined through wg; not data-parallel compute
		go func(i int, shard *tensor.Tensor, labels []int) {
			defer wg.Done()
			// Every request from this client runs the gauntlet: injected
			// connection failures and truncated bodies, absorbed by the
			// client's exponential-backoff retry policy.
			cl := &flnet.Client{
				BaseURL: baseURL,
				ID:      fmt.Sprintf("edge-%d", i),
				HTTPClient: &http.Client{Transport: faults.NewTransport(faults.Config{
					FailRate:     failRate,
					TruncateRate: 0.1,
					Seed:         int64(seed + 100*i),
				})},
				Retry:  &flnet.RetryPolicy{MaxAttempts: 6, BaseDelay: 5 * time.Millisecond},
				Uplink: channel.PacketLoss{Rate: 0.2},
				Rng:    rand.New(rand.NewSource(int64(seed + i))),
				Codec:  compress.Int8{}, // negotiated int8 wire envelopes
			}
			clientCtx := ctx
			if dieRound, dies := crash[i]; dies {
				// a crashing client simply stops participating mid-round
				var die context.CancelFunc
				clientCtx, die = context.WithCancel(ctx)
				defer die()
				//fhdnn:allow goroutine crash-trigger watcher for the demo; exits with its client context
				go func() {
					c := &flnet.Client{BaseURL: baseURL}
					for {
						info, err := c.Round(ctx)
						if err == nil && (info.Round >= dieRound || info.Closed) {
							die()
							return
						}
						time.Sleep(5 * time.Millisecond)
					}
				}()
			}
			lt := &flnet.LocalTrainer{
				Client:  cl,
				Encoded: shard,
				Labels:  labels,
				Epochs:  2,
				Poll:    5 * time.Millisecond,
			}
			if attacker != nil && colluders[i] {
				lt.Tamper = func(round int, local, global *hdc.Model) {
					attacker.Corrupt(local.Flat(), global.Flat(), round, i)
				}
			}
			n, err := lt.Participate(clientCtx)
			if err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("client %d: %v", i, err)
				return
			}
			if _, dies := crash[i]; dies {
				fmt.Printf("client %d crashed after contributing to %d rounds\n", i, n)
			} else {
				fmt.Printf("client %d contributed to %d rounds\n", i, n)
			}
		}(i, shard, labels)
	}

	// A poisoner pushes a NaN update every round; the quarantine gate
	// must keep every one of them out of the global model.
	wg.Add(1)
	//fhdnn:allow goroutine adversarial poisoner actor for the demo, joined through wg
	go func() {
		defer wg.Done()
		cl := &flnet.Client{BaseURL: baseURL, ID: "poisoner"}
		last := 0
		for ctx.Err() == nil {
			info, err := cl.Round(ctx)
			if err != nil || info.Closed {
				return
			}
			if info.Round != last {
				poison := hdc.NewModel(10, hdDim)
				poison.Flat()[0] = float32(math.NaN())
				if err := cl.PushUpdate(ctx, info.Round, poison); err != nil {
					var q flnet.ErrQuarantined
					if errors.As(err, &q) {
						last = info.Round
					}
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Progress monitor.
	done := make(chan struct{})
	//fhdnn:allow goroutine progress monitor for the demo; signals completion through done
	go func() {
		defer close(done)
		c := &flnet.Client{BaseURL: baseURL}
		last := 0
		for {
			info, err := c.Round(ctx)
			if err != nil {
				return
			}
			if info.Round != last {
				model, _ := srv.Model()
				fmt.Printf("  round %d starts, global accuracy so far: %.3f\n",
					info.Round, model.Accuracy(testEnc, test.Labels))
				last = info.Round
			}
			if info.Closed {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	wg.Wait()
	<-done
	global, _ := srv.Model()
	st := srv.Stats()
	fmt.Printf("\nfinal global accuracy on held-out data: %.3f\n",
		global.Accuracy(testEnc, test.Labels))
	rawWire := 4 * 10 * hdDim
	int8Wire := fedcore.WireBytes(compress.Int8{}, 10*hdDim)
	fmt.Printf("per-update wire size: %d KB as int8 envelope vs %d KB raw float32 (%.1fx smaller)\n",
		int8Wire/1024, rawWire/1024, float64(rawWire)/float64(int8Wire))
	fmt.Printf("server stats: %d accepted (by codec: %v), %d quarantined (by reason: %v), %d duplicates, %d stale/late, %d deadline-forced rounds, %d KB received\n",
		st.UpdatesAccepted, st.UpdatesByCodec, st.UpdatesQuarantined, st.QuarantinedByReason,
		st.DuplicateUpdates, st.UpdatesRejected, st.RoundsForcedByDeadline, st.BytesReceived/1024)
	if st.UpdatesClipped > 0 {
		fmt.Printf("updates norm-clipped by the %s policy: %d\n", st.Aggregator, st.UpdatesClipped)
	}
}
