// Edge deployment planning: use the calibrated device models (Table 1) and
// the LTE link model (Sec. 4.4) to budget a federated deployment — per-round
// client compute, energy, uplink time, and end-to-end training time — for
// FHDnn and the ResNet baseline, across devices and HD dimensionalities.
//
// Run with: go run ./examples/edge
package main

import (
	"fmt"

	"fhdnn/internal/device"
	"fhdnn/internal/link"
)

func main() {
	ref := device.PaperReference()
	lte := link.PaperLTE()
	if err := lte.Validate(); err != nil {
		panic(err)
	}
	fmt.Printf("link: %.0f MHz frame, %.0f dB SNR, Shannon capacity %.1f Mb/s\n",
		lte.BandwidthHz/1e6, lte.SNRdB, link.ShannonCapacity(lte.BandwidthHz, lte.SNRdB)/1e6)
	fmt.Printf("reference client: %d local samples, E=%d, ResNet-18 extractor, d=%d\n\n",
		ref.Samples, ref.Epochs, ref.HDDim)

	profiles := []device.Profile{device.RaspberryPi3(), device.JetsonNano()}

	// --- per-round compute & energy (the Table 1 view) ---
	fmt.Println("per-round local training (compute model calibrated to Table 1):")
	for _, p := range profiles {
		cnn := ref.CNNWorkload()
		fhd := ref.FHDnnWorkload()
		fmt.Printf("  %-14s FHDnn %8.1f s / %8.1f J    ResNet %8.1f s / %8.1f J\n",
			p.Name, p.Time(fhd), p.Energy(fhd), p.Time(cnn), p.Energy(cnn))
	}

	// --- uplink budget ---
	const (
		clients   = 100
		hdRounds  = 25  // paper: FHDnn converges in <25 rounds
		cnnRounds = 120 // paper: ResNet needs ~3x more rounds at lower rate
	)
	hdUpdate := int64(ref.HDDim * ref.NumClasses * 4)
	cnnUpdate := int64(11_173_962 * 2) // ResNet-18, float16 wire format

	fmt.Println("\nuplink budget per communication round:")
	fmt.Printf("  FHDnn : %6.2f MB at %.1f Mb/s (errors admitted) -> %6.1f s for %d clients\n",
		float64(hdUpdate)/(1<<20), lte.ErrorAdmittingRate/1e6,
		link.RoundTime(hdUpdate, clients, lte.ErrorAdmittingRate).Seconds(), clients)
	fmt.Printf("  ResNet: %6.2f MB at %.1f Mb/s (error-free coding) -> %6.1f s for %d clients\n",
		float64(cnnUpdate)/(1<<20), lte.ErrorFreeRate/1e6,
		link.RoundTime(cnnUpdate, clients, lte.ErrorFreeRate).Seconds(), clients)

	fmt.Println("\nend-to-end training (Sec 4.4):")
	fhdTotal := link.TrainingTime(hdRounds, hdUpdate, clients, lte.ErrorAdmittingRate)
	cnnTotal := link.TrainingTime(cnnRounds, cnnUpdate, clients, lte.ErrorFreeRate)
	fmt.Printf("  FHDnn : %d rounds -> %5.1f h, %7.1f MB per client\n",
		hdRounds, fhdTotal.Hours(), float64(link.DataTransmitted(hdRounds, hdUpdate))/(1<<20))
	fmt.Printf("  ResNet: %d rounds -> %5.1f h, %7.1f MB per client\n",
		cnnRounds, cnnTotal.Hours(), float64(link.DataTransmitted(cnnRounds, cnnUpdate))/(1<<20))
	fmt.Printf("  speedup: %.0fx\n", float64(cnnTotal)/float64(fhdTotal))

	// --- what if we shrink the hypervectors? ---
	fmt.Println("\nFHDnn dimensionality sweep (RPi compute vs uplink per round):")
	rpi := profiles[0]
	for _, d := range []int{2000, 5000, 10000, 20000} {
		r := ref
		r.HDDim = d
		up := int64(d * r.NumClasses * 4)
		fmt.Printf("  d=%-6d compute %7.1f s   update %5.2f MB   uplink %5.1f s/client\n",
			d, rpi.Time(r.FHDnnWorkload()), float64(up)/(1<<20),
			link.UploadTime(up, lte.ErrorAdmittingRate).Seconds())
	}
}
