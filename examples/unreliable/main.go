// Unreliable networks: train FHDnn and a CNN FedAvg baseline over the three
// lossy uplink models of the paper (packet loss, Gaussian noise, bit
// errors) and compare final accuracies — the Figure 8 story as a runnable
// program.
//
// Run with: go run ./examples/unreliable
package main

import (
	"fmt"

	"fhdnn/internal/channel"
	"fhdnn/internal/core"
	"fhdnn/internal/experiments"
)

func main() {
	s := experiments.Small()
	s.Seed = 7

	train, test := s.BuildDataset("cifar10")
	part := s.Partition(train, true, s.Seed)

	type scenario struct {
		name    string
		forHD   channel.Channel
		forCNN  channel.Channel
		comment string
	}
	scenarios := []scenario{
		{
			name:    "clean channel",
			forHD:   channel.Perfect{},
			forCNN:  channel.Perfect{},
			comment: "upper bound for both models",
		},
		{
			name:    "20% packet loss (UDP, no retransmission)",
			forHD:   channel.PacketLoss{Rate: 0.2},
			forCNN:  channel.PacketLoss{Rate: 0.2},
			comment: "the operating point LPWAN studies call energy-optimal",
		},
		{
			name:    "10 dB SNR Gaussian noise (uncoded analog uplink)",
			forHD:   channel.AWGN{SNRdB: 10},
			forCNN:  channel.AWGN{SNRdB: 10},
			comment: "noisy aggregation, paper Sec 3.5.1",
		},
		{
			name:    "bit errors, BER=1e-4",
			forHD:   channel.BitErrorQuantized{PE: 1e-4, Bits: 32, BlockLen: s.HDDim},
			forCNN:  channel.BitErrorFloat32{PE: 1e-4},
			comment: "FHDnn ships integers through the Sec 3.5.2 quantizer; the CNN ships IEEE-754 floats",
		},
	}

	fmt.Printf("%d clients, %d rounds, E=2 C=0.2 B=10, CIFAR-like data\n\n", s.NumClients, s.Rounds)
	for _, sc := range scenarios {
		cfg := s.FLConfig(s.Seed)

		hdCfg := cfg
		hdCfg.Uplink = sc.forHD
		f := s.NewFHDnn(train)
		hd := f.TrainFederated(train, test, part, hdCfg)

		cnnCfg := cfg
		cnnCfg.Uplink = sc.forCNN
		baseline := s.NewCNNBaseline("cifar10", train)
		cnnHist, _ := core.TrainFederatedCNN(baseline, train, test, part, cnnCfg)

		fmt.Printf("%s\n  (%s)\n", sc.name, sc.comment)
		fmt.Printf("  FHDnn: %.3f   CNN: %.3f\n\n",
			hd.History.FinalAccuracy(), cnnHist.FinalAccuracy())
	}
}
