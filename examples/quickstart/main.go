// Quickstart: assemble an FHDnn model (frozen feature extractor + HD
// encoder + HD classifier), train it with federated bundling on a synthetic
// CIFAR-10-like dataset split across 10 clients, and evaluate it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"fhdnn/internal/core"
	"fhdnn/internal/dataset"
	"fhdnn/internal/fl"
)

func main() {
	const (
		seed       = 42
		imgSize    = 8
		numClients = 10
	)

	// 1. Data: a synthetic stand-in for CIFAR-10 (10 classes, 3 channels),
	//    split IID across the clients.
	train, test := dataset.GenerateImages(dataset.CIFAR10Like(imgSize, 40, 15, seed))
	part := dataset.PartitionIID(train.Len(), numClients, rand.New(rand.NewSource(seed)))
	fmt.Printf("dataset: %d train / %d test examples, %d classes, %d clients\n",
		train.Len(), test.Len(), train.NumClasses, numClients)

	// 2. Model: a frozen random-conv feature extractor (stand-in for the
	//    paper's pretrained SimCLR ResNet; every client derives the same
	//    extractor and random projection from the shared seed) plus an HD
	//    classifier with d=2048.
	extractor := core.NewRandomConvExtractor(seed, train.X.Dim(1), 8, imgSize)
	model := core.New(extractor, core.Config{
		HDDim:      2048,
		NumClasses: train.NumClasses,
		Seed:       seed,
		Binarize:   true,
	})
	fmt.Printf("extractor: %s -> %d features; HD update size: %d KB\n",
		extractor.Name(), extractor.Dim(), model.UpdateSizeBytes()/1024)

	// 3. Federated training: the paper's defaults E=2, C=0.2, B=10.
	res := model.TrainFederated(train, test, part, fl.Config{
		NumClients:     numClients,
		ClientFraction: 0.2,
		LocalEpochs:    2,
		BatchSize:      10,
		Rounds:         10,
		Seed:           seed,
	})

	for _, r := range res.History.Rounds {
		fmt.Printf("round %2d: accuracy %.3f (%d clients, %d KB uplinked)\n",
			r.Round, r.TestAccuracy, r.Participants, r.BytesUplinked/1024)
	}
	fmt.Printf("\nfinal accuracy: %.3f after %d rounds, %.1f MB total uplink\n",
		res.History.FinalAccuracy(), len(res.History.Rounds),
		float64(res.History.TotalBytes())/(1<<20))

	// 4. Single-image inference through the full pipeline.
	one := test.Subset([]int{0})
	pred := model.Predict(one.X)
	fmt.Printf("sample 0: predicted class %d, true class %d\n", pred[0], one.Labels[0])
}
