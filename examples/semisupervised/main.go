// Semi-supervised bootstrap: an AIoT fleet usually has plenty of sensor
// data and almost no labels. This example shows the HD-native workflow:
//
//  1. extract features with the frozen pipeline and encode to hypervectors,
//  2. cluster the unlabeled hypervectors with spherical k-means,
//  3. name each cluster with a handful of labeled examples,
//  4. refine the resulting HD classifier with only those few labels,
//
// and compares the result against training on the few labels alone.
//
// Run with: go run ./examples/semisupervised
package main

import (
	"fmt"
	"math/rand"

	"fhdnn/internal/core"
	"fhdnn/internal/dataset"
	"fhdnn/internal/hdc"
	"fhdnn/internal/tensor"
)

func main() {
	const (
		seed          = 33
		imgSize       = 8
		hdDim         = 2048
		labelsPerComp = 3 // labeled examples available per class
	)
	train, test := dataset.GenerateImages(dataset.CIFAR10Like(imgSize, 40, 15, seed))
	k := train.NumClasses

	ext := core.NewRandomConvExtractor(seed, 3, 8, imgSize)
	fhd := core.New(ext, core.Config{HDDim: hdDim, NumClasses: k, Seed: seed, Binarize: true})
	encoded := fhd.EncodeDataset(train)
	testEnc := fhd.EncodeDataset(test)

	// A few labeled indices per class; everything else is "unlabeled".
	rng := rand.New(rand.NewSource(seed))
	labeled := map[int][]int{}
	for i, l := range train.Labels {
		if len(labeled[l]) < labelsPerComp && rng.Float64() < 0.3 {
			labeled[l] = append(labeled[l], i)
		}
	}
	nLabeled := 0
	for _, idx := range labeled {
		nLabeled += len(idx)
	}
	fmt.Printf("%d training examples, only %d labeled (%.1f%%)\n\n",
		train.Len(), nLabeled, 100*float64(nLabeled)/float64(train.Len()))

	// Baseline: supervised training on the few labels only.
	few := hdc.NewModel(k, hdDim)
	d := hdDim
	for class, idx := range labeled {
		for _, i := range idx {
			few.BundleInto(class, encoded.Data()[i*d:(i+1)*d])
		}
	}
	fmt.Printf("labels-only HD model:        accuracy %.3f\n",
		few.Accuracy(testEnc, test.Labels))

	// Semi-supervised: over-cluster the unlabeled data (3 clusters per
	// expected class — classes rarely map to single clusters), name each
	// cluster by majority vote of its labeled members, and bundle the
	// named centroids with the labeled examples.
	nClusters := 3 * k
	res := hdc.KMeans(encoded, nClusters, 50, rng)
	clusterToClass := nameClusters(res, labeled, nClusters, k)
	semi := few.Clone() // start from the labeled bundles
	for c := 0; c < nClusters; c++ {
		class := clusterToClass[c]
		if class < 0 {
			continue
		}
		centroid := res.Centroids.Data()[c*d : (c+1)*d]
		// centroids are sums over many members; scale to the magnitude of
		// a few examples so labels and structure contribute comparably
		scaled := make([]float32, d)
		norm := float32(hdc.Norm(centroid))
		if norm == 0 {
			continue
		}
		target := float32(hdc.Norm(semi.Class(class)))
		if target == 0 {
			target = norm
		}
		for j, v := range centroid {
			scaled[j] = v / norm * target
		}
		hdc.Bundle(semi.Class(class), scaled)
	}
	fmt.Printf("cluster-then-name HD model:  accuracy %.3f\n",
		semi.Accuracy(testEnc, test.Labels))

	// Plus refinement on the labeled handful.
	labIdx := []int{}
	for _, idx := range labeled {
		labIdx = append(labIdx, idx...)
	}
	labEnc := tensor.New(len(labIdx), d)
	labY := make([]int, len(labIdx))
	for bi, i := range labIdx {
		copy(labEnc.Data()[bi*d:(bi+1)*d], encoded.Data()[i*d:(i+1)*d])
		labY[bi] = train.Labels[i]
	}
	for e := 0; e < 5; e++ {
		semi.RefineEpoch(labEnc, labY)
	}
	fmt.Printf("  + refined on the labels:   accuracy %.3f\n",
		semi.Accuracy(testEnc, test.Labels))

	fmt.Printf("\nclustering purity against true classes: %.3f (%d clusters)\n",
		hdc.Purity(res.Assign, train.Labels, nClusters, k), nClusters)
}

// nameClusters maps each cluster to the majority class among its labeled
// members (-1 when a cluster holds no labeled example).
func nameClusters(res *hdc.ClusterResult, labeled map[int][]int, nClusters, k int) []int {
	votes := make([][]int, nClusters)
	for i := range votes {
		votes[i] = make([]int, k)
	}
	for class, idx := range labeled {
		for _, i := range idx {
			votes[res.Assign[i]][class]++
		}
	}
	out := make([]int, nClusters)
	for c := range out {
		out[c] = -1
		best := 0
		for class, n := range votes[c] {
			if n > best {
				best, out[c] = n, class
			}
		}
	}
	return out
}
