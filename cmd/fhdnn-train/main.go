// Command fhdnn-train trains an FHDnn classifier on a local dataset and
// writes the full model checkpoint (extractor + encoder + HD prototypes)
// that fhdnn-client / fhdnn-inspect understand. Input is either a CSV file
// (label-first rows, see internal/dataset) or the MNIST IDX pair, or — with
// no input flags — the synthetic CIFAR-like benchmark data.
//
// Usage:
//
//	fhdnn-train -csv data.csv -classes 10 -channels 3 -size 32 -out model.fhdnn
//	fhdnn-train -idx-images train-images-idx3-ubyte -idx-labels train-labels-idx1-ubyte -out model.fhdnn
//	fhdnn-train -out model.fhdnn          # synthetic demo data
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"fhdnn/internal/core"
	"fhdnn/internal/dataset"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fhdnn-train:", err)
		os.Exit(1)
	}
}

func run() error {
	csvPath := flag.String("csv", "", "label-first CSV dataset")
	idxImages := flag.String("idx-images", "", "IDX images file (MNIST format)")
	idxLabels := flag.String("idx-labels", "", "IDX labels file (pair of -idx-images)")
	classes := flag.Int("classes", 10, "number of classes")
	channels := flag.Int("channels", 3, "image channels (CSV input)")
	size := flag.Int("size", 8, "image side length")
	hdDim := flag.Int("dim", 4096, "hypervector dimensionality")
	width := flag.Int("width", 8, "random-conv extractor width")
	epochs := flag.Int("epochs", 5, "refinement epochs")
	testFrac := flag.Float64("test-frac", 0.2, "held-out fraction for evaluation")
	seed := flag.Int64("seed", 1, "pipeline seed")
	out := flag.String("out", "model.fhdnn", "checkpoint output path")
	flag.Parse()

	ds, err := loadData(*csvPath, *idxImages, *idxLabels, *classes, *channels, *size, *seed)
	if err != nil {
		return err
	}
	if ds.X.NumDims() != 4 {
		return fmt.Errorf("fhdnn-train expects image data, got shape %v", ds.X.Shape())
	}
	imgSize := ds.X.Dim(2)
	if imgSize%2 != 0 {
		return fmt.Errorf("image size %d must be even for the extractor", imgSize)
	}

	rng := rand.New(rand.NewSource(*seed))
	train, test := dataset.SplitStratified(ds, *testFrac, rng)
	log.Printf("dataset %q: %d train / %d test, %d classes, %v per example",
		ds.Name, train.Len(), test.Len(), ds.NumClasses, ds.SampleShape())

	ext := core.NewRandomConvExtractor(*seed, ds.X.Dim(1), *width, imgSize)
	model := core.New(ext, core.Config{
		HDDim: *hdDim, NumClasses: ds.NumClasses, Seed: *seed, Binarize: true})
	log.Printf("pipeline: %s -> %d features -> d=%d hypervectors (update %d KB)",
		ext.Name(), ext.Dim(), *hdDim, model.UpdateSizeBytes()/1024)

	model.TrainCentralized(train, *epochs)
	log.Printf("train accuracy %.3f, test accuracy %.3f",
		model.Accuracy(train), model.Accuracy(test))

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := model.Save(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, _ := os.Stat(*out)
	log.Printf("checkpoint written to %s (%d bytes)", *out, info.Size())
	return nil
}

func loadData(csvPath, idxImages, idxLabels string, classes, channels, size int, seed int64) (*dataset.Dataset, error) {
	switch {
	case csvPath != "":
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		//fhdnn:allow wire-error read-only file; a Close error cannot lose data
		defer f.Close()
		return dataset.ReadCSVImages(f, csvPath, classes, channels, size)
	case idxImages != "" || idxLabels != "":
		if idxImages == "" || idxLabels == "" {
			return nil, fmt.Errorf("need both -idx-images and -idx-labels")
		}
		imgF, err := os.Open(idxImages)
		if err != nil {
			return nil, err
		}
		//fhdnn:allow wire-error read-only file; a Close error cannot lose data
		defer imgF.Close()
		labF, err := os.Open(idxLabels)
		if err != nil {
			return nil, err
		}
		//fhdnn:allow wire-error read-only file; a Close error cannot lose data
		defer labF.Close()
		return dataset.LoadIDX(imgF, labF, idxImages, classes)
	default:
		train, _ := dataset.GenerateImages(dataset.CIFAR10Like(size, 50, 1, seed))
		return train, nil
	}
}
