// Command fhdnn-bench measures the blocked compute kernels against replicas
// of the pre-blocking serial kernels and writes the results as a tracked
// JSON baseline (BENCH_pr3.json). It also sweeps the sharded aggregation
// tree across shard counts (1/2/4/8), serial and with one owner goroutine
// per shard, into a second baseline (BENCH_pr7.json). Run it via
// `make bench`; commit the refreshed files when kernel or aggregation work
// changes the numbers on the reference runner.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"fhdnn/internal/fedcore"
	"fhdnn/internal/hdc"
	"fhdnn/internal/tensor"
)

// Result is one benchmark row. MBPerS is derived from the operand bytes a
// single iteration touches (inputs + outputs, each counted once).
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_op"`
	MBPerS      float64 `json:"mb_s"`
	AllocsPerOp int64   `json:"allocs_op"`
}

// Report is the schema of BENCH_pr3.json.
type Report struct {
	GoVersion string             `json:"go_version"`
	GOARCH    string             `json:"goarch"`
	NumCPU    int                `json:"num_cpu"`
	Workers   int                `json:"workers"`
	Results   []Result           `json:"results"`
	Speedups  map[string]float64 `json:"speedups"`
}

// naiveMatMulInto replicates the pre-blocking MatMul kernel (i-k-j AXPY
// with a zero-skip, single goroutine).
func naiveMatMulInto(c, a, b []float32, m, k, n int) {
	for i := range c[:m*n] {
		c[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// naiveEncodeBatch replicates the pre-blocking batch encoder: one
// single-accumulator matrix-vector product per sample, then sign.
func naiveEncodeBatch(phi []float32, d, n int, z *tensor.Tensor, out *tensor.Tensor) {
	batch := z.Dim(0)
	for s := 0; s < batch; s++ {
		row := z.Data()[s*n : (s+1)*n]
		h := out.Data()[s*d : (s+1)*d]
		for i := 0; i < d; i++ {
			prow := phi[i*n : (i+1)*n]
			sum := float32(0)
			for j, v := range prow {
				sum += v * row[j]
			}
			if sum >= 0 {
				h[i] = 1
			} else {
				h[i] = -1
			}
		}
	}
}

func run(name string, bytesPerOp int64, fn func()) Result {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	nsPerOp := r.NsPerOp()
	mbs := 0.0
	if nsPerOp > 0 {
		mbs = float64(bytesPerOp) / float64(nsPerOp) * 1e9 / 1e6
	}
	res := Result{
		Name:        name,
		NsPerOp:     nsPerOp,
		MBPerS:      mbs,
		AllocsPerOp: r.AllocsPerOp(),
	}
	fmt.Printf("%-28s %12d ns/op %10.1f MB/s %6d allocs/op\n",
		res.Name, res.NsPerOp, res.MBPerS, res.AllocsPerOp)
	return res
}

// ShardReport is the schema of BENCH_pr7.json: one aggregation round
// (Add every update, fold, commit) per op, swept over shard counts.
type ShardReport struct {
	GoVersion string             `json:"go_version"`
	GOARCH    string             `json:"goarch"`
	NumCPU    int                `json:"num_cpu"`
	Updates   int                `json:"updates"`
	Dim       int                `json:"dim"`
	Results   []Result           `json:"results"`
	Speedups  map[string]float64 `json:"speedups"`
}

// shardSweep benchmarks the sharded aggregation tree at 1/2/4/8 shards:
// serially (same goroutine adds everything — measures the pure fold
// overhead vs a flat aggregator) and partitioned (one owner goroutine per
// shard, the concurrency contract the flnet server runs under).
func shardSweep(outPath string) error {
	const n, d = 64, 10000
	rng := rand.New(rand.NewSource(7))
	ups := make([]fedcore.Update, n)
	for i := range ups {
		params := make([]float32, d)
		for j := range params {
			params[j] = float32(rng.NormFloat64())
		}
		ups[i] = fedcore.Update{Params: params, Samples: 1, ClientID: fmt.Sprintf("edge-%03d", i)}
	}
	global := make([]float32, d)
	roundBytes := int64((n*d + d) * 4)

	rep := ShardReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Updates:   n,
		Dim:       d,
		Speedups:  map[string]float64{},
	}
	byName := map[string]Result{}
	add := func(name string, fn func()) {
		res := run(name, roundBytes, fn)
		byName[name] = res
		rep.Results = append(rep.Results, res)
	}

	flat := &fedcore.Bundle{}
	add("FlatRound", func() {
		flat.Reset()
		for _, u := range ups {
			flat.Add(u)
		}
		flat.Commit(global)
	})
	for _, shards := range []int{1, 2, 4, 8} {
		sh, err := fedcore.NewSharded(shards, func() fedcore.Aggregator { return &fedcore.Bundle{} })
		if err != nil {
			return err
		}
		add(fmt.Sprintf("ShardedRound%d", shards), func() {
			sh.Reset()
			for _, u := range ups {
				sh.Add(u)
			}
			sh.Commit(global)
		})
		// Pre-route once; the partitioned benchmark measures concurrent
		// shard-owner ingest, not the hash.
		buckets := make([][]fedcore.Update, shards)
		for _, u := range ups {
			i := sh.ShardFor(u)
			buckets[i] = append(buckets[i], u)
		}
		add(fmt.Sprintf("ShardedRoundOwners%d", shards), func() {
			sh.Reset()
			var wg sync.WaitGroup
			for i := 0; i < shards; i++ {
				i := i
				wg.Add(1)
				//fhdnn:allow goroutine one owner goroutine per shard, joined before the fold — the flnet partitioned-ingest contract
				go func() {
					for _, u := range buckets[i] {
						sh.Shard(i).Add(u)
					}
					wg.Done()
				}()
			}
			wg.Wait()
			sh.Commit(global)
		})
	}
	for _, shards := range []int{1, 2, 4, 8} {
		serial := byName[fmt.Sprintf("ShardedRound%d", shards)]
		owners := byName[fmt.Sprintf("ShardedRoundOwners%d", shards)]
		rep.Speedups[fmt.Sprintf("owners%d_vs_flat", shards)] =
			float64(byName["FlatRound"].NsPerOp) / float64(owners.NsPerOp)
		rep.Speedups[fmt.Sprintf("sharded%d_overhead_vs_flat", shards)] =
			float64(serial.NsPerOp) / float64(byName["FlatRound"].NsPerOp)
	}
	for _, k := range []string{"owners2_vs_flat", "owners4_vs_flat", "owners8_vs_flat"} {
		fmt.Printf("speedup %-24s %.2fx\n", k, rep.Speedups[k])
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", outPath)
	return nil
}

func main() {
	out := flag.String("out", "BENCH_pr3.json", "output JSON path ('' to skip writing)")
	shardOut := flag.String("shard-out", "", "also sweep sharded aggregation and write BENCH_pr7-style JSON here ('' to skip)")
	flag.Parse()

	if *shardOut != "" {
		if err := shardSweep(*shardOut); err != nil {
			fmt.Fprintln(os.Stderr, "fhdnn-bench:", err)
			os.Exit(1)
		}
		if *out == "" {
			return
		}
	}

	rep := Report{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Workers:   tensor.Workers(),
		Speedups:  map[string]float64{},
	}
	byName := map[string]Result{}
	add := func(name string, bytesPerOp int64, fn func()) {
		res := run(name, bytesPerOp, fn)
		byName[name] = res
		rep.Results = append(rep.Results, res)
	}

	// --- MatMul 256x256x256 ---
	const mm = 256
	rng := rand.New(rand.NewSource(1))
	a := tensor.Randn(rng, 1, mm, mm)
	b := tensor.Randn(rng, 1, mm, mm)
	dst := tensor.New(mm, mm)
	mmBytes := int64(3 * mm * mm * 4)
	add("MatMulNaive256", mmBytes, func() {
		naiveMatMulInto(dst.Data(), a.Data(), b.Data(), mm, mm, mm)
	})
	add("MatMulInto256", mmBytes, func() { tensor.MatMulInto(dst, a, b) })
	add("MatMulTransBInto256", mmBytes, func() { tensor.MatMulTransBInto(dst, a, b) })

	// --- EncodeBatch batch=64, d=10000, n=512 ---
	const batch, d, n = 64, 10000, 512
	enc := hdc.NewEncoder(rand.New(rand.NewSource(2)), d, n)
	z := tensor.Randn(rand.New(rand.NewSource(3)), 1, batch, n)
	h := tensor.New(batch, d)
	encBytes := int64((batch*n + d*n + batch*d) * 4)
	add("EncodeBatchNaive", encBytes, func() {
		naiveEncodeBatch(enc.Phi.Data(), d, n, z, h)
	})
	add("EncodeBatch", encBytes, func() { enc.EncodeBatchInto(h, z) })

	// --- single-vector EncodeInto (allocation check rides along) ---
	zRow := z.Data()[:n]
	hRow := make([]float32, d)
	add("EncodeInto", int64((n+d*n+d)*4), func() { enc.EncodeInto(hRow, zRow) })

	rep.Speedups["MatMul256"] = float64(byName["MatMulNaive256"].NsPerOp) /
		float64(byName["MatMulInto256"].NsPerOp)
	rep.Speedups["EncodeBatch"] = float64(byName["EncodeBatchNaive"].NsPerOp) /
		float64(byName["EncodeBatch"].NsPerOp)
	fmt.Printf("speedup MatMul256   %.2fx\n", rep.Speedups["MatMul256"])
	fmt.Printf("speedup EncodeBatch %.2fx\n", rep.Speedups["EncodeBatch"])

	if *out != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "fhdnn-bench:", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fhdnn-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
}
