// Command fhdnn-bench measures the blocked compute kernels against replicas
// of the pre-blocking serial kernels, sweeps them across worker-pool sizes
// (default 1/2/4/8 via tensor.SetWorkers), and writes the results as a
// tracked JSON baseline (BENCH_pr8.json): one row per (kernel, workers)
// with ns/op, MB/s and allocs/op, a speedups entry per kernel (blocked vs
// naive at one worker), and per-kernel scaling factors relative to the
// one-worker row. It also sweeps the sharded aggregation tree across shard
// counts (1/2/4/8), serial and with one owner goroutine per shard — the
// shard sweep is embedded in the main report and can additionally be
// written standalone (BENCH_pr7.json schema) via -shard-out. Run it via
// `make bench`; commit the refreshed files when kernel or aggregation work
// changes the numbers on the reference runner.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"fhdnn/internal/fedcore"
	"fhdnn/internal/hdc"
	"fhdnn/internal/tensor"
)

// Result is one benchmark row. MBPerS is derived from the operand bytes a
// single iteration touches (inputs + outputs, each counted once). Workers
// is the tensor pool size the row ran under (for shard rows: the number of
// concurrent owner goroutines), recorded per row because a single report
// now mixes worker counts.
type Result struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	NsPerOp     int64   `json:"ns_op"`
	MBPerS      float64 `json:"mb_s"`
	AllocsPerOp int64   `json:"allocs_op"`
}

// Report is the schema of BENCH_pr8.json. Speedups holds one
// "<kernel>" entry per swept kernel: blocked at one worker vs the naive
// serial replica. Scaling holds, per kernel, the throughput factor of each
// swept worker count relative to that kernel's one-worker row (only
// emitted when the sweep includes one worker).
type Report struct {
	GoVersion   string                        `json:"go_version"`
	GOARCH      string                        `json:"goarch"`
	NumCPU      int                           `json:"num_cpu"`
	GOMAXPROCS  int                           `json:"gomaxprocs"`
	FastKernels bool                          `json:"fast_kernels"`
	WorkerSweep []int                         `json:"worker_sweep"`
	Results     []Result                      `json:"results"`
	Speedups    map[string]float64            `json:"speedups"`
	Scaling     map[string]map[string]float64 `json:"scaling"`
	Shard       *ShardReport                  `json:"shard,omitempty"`
}

// naiveMatMulInto replicates the pre-blocking MatMul kernel (i-k-j AXPY
// with a zero-skip, single goroutine).
func naiveMatMulInto(c, a, b []float32, m, k, n int) {
	for i := range c[:m*n] {
		c[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// naiveMatMulTransBInto replicates the pre-packing dot-product kernel: one
// serial ascending-k accumulator per output element, contiguous row-row
// dots, single goroutine.
func naiveMatMulTransBInto(c, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var s float32
			for kk, av := range arow {
				s += av * brow[kk]
			}
			crow[j] = s
		}
	}
}

// naiveMatVecInto replicates the pre-blocking matrix-vector kernel: one
// single-accumulator row dot per output element.
func naiveMatVecInto(y, a, x []float32, m, n int) {
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		var s float32
		for j, xv := range x {
			s += row[j] * xv
		}
		y[i] = s
	}
}

// naiveEncodeBatch replicates the pre-blocking batch encoder: one
// single-accumulator matrix-vector product per sample, then sign.
func naiveEncodeBatch(phi []float32, d, n int, z *tensor.Tensor, out *tensor.Tensor) {
	batch := z.Dim(0)
	for s := 0; s < batch; s++ {
		row := z.Data()[s*n : (s+1)*n]
		h := out.Data()[s*d : (s+1)*d]
		for i := 0; i < d; i++ {
			prow := phi[i*n : (i+1)*n]
			sum := float32(0)
			for j, v := range prow {
				sum += v * row[j]
			}
			if sum >= 0 {
				h[i] = 1
			} else {
				h[i] = -1
			}
		}
	}
}

func run(name string, workers int, bytesPerOp int64, fn func()) Result {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	nsPerOp := r.NsPerOp()
	mbs := 0.0
	if nsPerOp > 0 {
		mbs = float64(bytesPerOp) / float64(nsPerOp) * 1e9 / 1e6
	}
	res := Result{
		Name:        name,
		Workers:     workers,
		NsPerOp:     nsPerOp,
		MBPerS:      mbs,
		AllocsPerOp: r.AllocsPerOp(),
	}
	fmt.Printf("%-28s w=%-2d %12d ns/op %10.1f MB/s %6d allocs/op\n",
		res.Name, res.Workers, res.NsPerOp, res.MBPerS, res.AllocsPerOp)
	return res
}

// ShardReport is the schema of BENCH_pr7.json: one aggregation round
// (Add every update, fold, commit) per op, swept over shard counts.
type ShardReport struct {
	GoVersion string             `json:"go_version"`
	GOARCH    string             `json:"goarch"`
	NumCPU    int                `json:"num_cpu"`
	Updates   int                `json:"updates"`
	Dim       int                `json:"dim"`
	Results   []Result           `json:"results"`
	Speedups  map[string]float64 `json:"speedups"`
}

// shardSweep benchmarks the sharded aggregation tree at 1/2/4/8 shards:
// serially (same goroutine adds everything — measures the pure fold
// overhead vs a flat aggregator) and partitioned (one owner goroutine per
// shard, the concurrency contract the flnet server runs under).
func shardSweep() (*ShardReport, error) {
	const n, d = 64, 10000
	rng := rand.New(rand.NewSource(7))
	ups := make([]fedcore.Update, n)
	for i := range ups {
		params := make([]float32, d)
		for j := range params {
			params[j] = float32(rng.NormFloat64())
		}
		ups[i] = fedcore.Update{Params: params, Samples: 1, ClientID: fmt.Sprintf("edge-%03d", i)}
	}
	global := make([]float32, d)
	roundBytes := int64((n*d + d) * 4)

	rep := &ShardReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Updates:   n,
		Dim:       d,
		Speedups:  map[string]float64{},
	}
	byName := map[string]Result{}
	add := func(name string, workers int, fn func()) {
		res := run(name, workers, roundBytes, fn)
		byName[name] = res
		rep.Results = append(rep.Results, res)
	}

	flat := &fedcore.Bundle{}
	add("FlatRound", 1, func() {
		flat.Reset()
		for _, u := range ups {
			flat.Add(u)
		}
		flat.Commit(global)
	})
	for _, shards := range []int{1, 2, 4, 8} {
		sh, err := fedcore.NewSharded(shards, func() fedcore.Aggregator { return &fedcore.Bundle{} })
		if err != nil {
			return nil, err
		}
		add(fmt.Sprintf("ShardedRound%d", shards), 1, func() {
			sh.Reset()
			for _, u := range ups {
				sh.Add(u)
			}
			sh.Commit(global)
		})
		// Pre-route once; the partitioned benchmark measures concurrent
		// shard-owner ingest, not the hash.
		buckets := make([][]fedcore.Update, shards)
		for _, u := range ups {
			i := sh.ShardFor(u)
			buckets[i] = append(buckets[i], u)
		}
		add(fmt.Sprintf("ShardedRoundOwners%d", shards), shards, func() {
			sh.Reset()
			var wg sync.WaitGroup
			for i := 0; i < shards; i++ {
				i := i
				wg.Add(1)
				//fhdnn:allow goroutine one owner goroutine per shard, joined before the fold — the flnet partitioned-ingest contract
				go func() {
					for _, u := range buckets[i] {
						sh.Shard(i).Add(u)
					}
					wg.Done()
				}()
			}
			wg.Wait()
			sh.Commit(global)
		})
	}
	for _, shards := range []int{1, 2, 4, 8} {
		serial := byName[fmt.Sprintf("ShardedRound%d", shards)]
		owners := byName[fmt.Sprintf("ShardedRoundOwners%d", shards)]
		rep.Speedups[fmt.Sprintf("owners%d_vs_flat", shards)] =
			float64(byName["FlatRound"].NsPerOp) / float64(owners.NsPerOp)
		rep.Speedups[fmt.Sprintf("sharded%d_overhead_vs_flat", shards)] =
			float64(serial.NsPerOp) / float64(byName["FlatRound"].NsPerOp)
	}
	for _, k := range []string{"owners2_vs_flat", "owners4_vs_flat", "owners8_vs_flat"} {
		fmt.Printf("speedup %-24s %.2fx\n", k, rep.Speedups[k])
	}
	return rep, nil
}

func writeJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid worker count %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty worker sweep")
	}
	return out, nil
}

func main() {
	out := flag.String("out", "BENCH_pr8.json", "output JSON path ('' to skip writing)")
	shardOut := flag.String("shard-out", "", "also write the shard sweep standalone in the BENCH_pr7.json schema ('' to skip)")
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated tensor worker counts to sweep")
	flag.Parse()

	sweep, err := parseWorkers(*workersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fhdnn-bench:", err)
		os.Exit(1)
	}

	rep := Report{
		GoVersion:   runtime.Version(),
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		FastKernels: tensor.FastKernels(),
		WorkerSweep: sweep,
		Speedups:    map[string]float64{},
		Scaling:     map[string]map[string]float64{},
	}

	origWorkers := tensor.SetWorkers(1)
	defer tensor.SetWorkers(origWorkers)

	// nsAt[kernel][workers] backs the speedup and scaling tables.
	nsAt := map[string]map[int]int64{}
	naive := func(name string, bytesPerOp int64, fn func()) {
		tensor.SetWorkers(1)
		rep.Results = append(rep.Results, run(name, 1, bytesPerOp, fn))
	}
	kernel := func(name string, bytesPerOp int64, fn func()) {
		nsAt[name] = map[int]int64{}
		for _, w := range sweep {
			tensor.SetWorkers(w)
			res := run(name, w, bytesPerOp, fn)
			rep.Results = append(rep.Results, res)
			nsAt[name][w] = res.NsPerOp
		}
		tensor.SetWorkers(1)
	}

	// --- MatMul / MatMulTransB 256x256x256 ---
	const mm = 256
	rng := rand.New(rand.NewSource(1))
	a := tensor.Randn(rng, 1, mm, mm)
	b := tensor.Randn(rng, 1, mm, mm)
	dst := tensor.New(mm, mm)
	mmBytes := int64(3 * mm * mm * 4)
	naive("MatMulNaive256", mmBytes, func() {
		naiveMatMulInto(dst.Data(), a.Data(), b.Data(), mm, mm, mm)
	})
	naive("MatMulTransBNaive256", mmBytes, func() {
		naiveMatMulTransBInto(dst.Data(), a.Data(), b.Data(), mm, mm, mm)
	})
	kernel("MatMulInto256", mmBytes, func() { tensor.MatMulInto(dst, a, b) })
	kernel("MatMulTransBInto256", mmBytes, func() { tensor.MatMulTransBInto(dst, a, b) })

	// --- MatVec 2048x512 ---
	const mvM, mvN = 2048, 512
	mva := tensor.Randn(rand.New(rand.NewSource(4)), 1, mvM, mvN)
	mvx := tensor.Randn(rand.New(rand.NewSource(5)), 1, mvN).Data()
	mvy := make([]float32, mvM)
	mvBytes := int64((mvM*mvN + mvN + mvM) * 4)
	naive("MatVecNaive2048x512", mvBytes, func() {
		naiveMatVecInto(mvy, mva.Data(), mvx, mvM, mvN)
	})
	kernel("MatVecInto2048x512", mvBytes, func() { tensor.MatVecInto(mvy, mva, mvx) })

	// --- EncodeBatch batch=64, d=10000, n=512 ---
	const batch, d, n = 64, 10000, 512
	enc := hdc.NewEncoder(rand.New(rand.NewSource(2)), d, n)
	z := tensor.Randn(rand.New(rand.NewSource(3)), 1, batch, n)
	h := tensor.New(batch, d)
	encBytes := int64((batch*n + d*n + batch*d) * 4)
	naive("EncodeBatchNaive", encBytes, func() {
		naiveEncodeBatch(enc.Phi.Data(), d, n, z, h)
	})
	kernel("EncodeBatch", encBytes, func() { enc.EncodeBatchInto(h, z) })

	// --- single-vector EncodeInto (allocation check rides along) ---
	zRow := z.Data()[:n]
	hRow := make([]float32, d)
	kernel("EncodeInto", int64((n+d*n+d)*4), func() { enc.EncodeInto(hRow, zRow) })

	// Speedups: blocked kernel at one worker vs its naive serial replica.
	// EncodeInto has no separate naive replica; EncodeBatchNaive is the
	// per-sample loop, so its per-row cost is the honest baseline.
	speedup := func(key, kern, base string, baseScale float64) {
		kw, ok := nsAt[kern][1]
		if !ok {
			return
		}
		for _, r := range rep.Results {
			if r.Name == base {
				rep.Speedups[key] = float64(r.NsPerOp) * baseScale / float64(kw)
				fmt.Printf("speedup %-20s %.2fx\n", key, rep.Speedups[key])
				return
			}
		}
	}
	speedup("MatMul256", "MatMulInto256", "MatMulNaive256", 1)
	speedup("MatMulTransB256", "MatMulTransBInto256", "MatMulTransBNaive256", 1)
	speedup("MatVec2048x512", "MatVecInto2048x512", "MatVecNaive2048x512", 1)
	speedup("EncodeBatch", "EncodeBatch", "EncodeBatchNaive", 1)
	speedup("EncodeInto", "EncodeInto", "EncodeBatchNaive", 1.0/batch)

	// Scaling: per-kernel throughput factor of every swept worker count
	// relative to that kernel's one-worker row.
	for name, byW := range nsAt {
		base, ok := byW[1]
		if !ok {
			continue
		}
		m := map[string]float64{}
		for w, ns := range byW {
			if w == 1 || ns == 0 {
				continue
			}
			m[strconv.Itoa(w)] = float64(base) / float64(ns)
		}
		if len(m) > 0 {
			rep.Scaling[name] = m
			fmt.Printf("scaling %-20s %v\n", name, m)
		}
	}

	tensor.SetWorkers(origWorkers)
	shard, err := shardSweep()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fhdnn-bench:", err)
		os.Exit(1)
	}
	rep.Shard = shard
	if *shardOut != "" {
		if err := writeJSON(*shardOut, shard); err != nil {
			fmt.Fprintln(os.Stderr, "fhdnn-bench:", err)
			os.Exit(1)
		}
	}

	if *out != "" {
		if err := writeJSON(*out, &rep); err != nil {
			fmt.Fprintln(os.Stderr, "fhdnn-bench:", err)
			os.Exit(1)
		}
	}
}
