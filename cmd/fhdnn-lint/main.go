// Command fhdnn-lint enforces the repo's determinism, concurrency and
// wire-safety invariants (see internal/analysis for the rule set). It is
// built only on the standard library and runs as a required CI step.
//
// Usage:
//
//	fhdnn-lint [-json] [-suppressed] [-rules r1,r2] [-timing] [-version] [packages...]
//
// Packages are directory patterns relative to the module root
// ("./...", "./internal/flnet"); the default is ./... .
//
// -timing prints a per-rule wall-time table to stderr after the run
// (shared engine stages — package loading, the module call graph, the
// taint fixpoint — get their own rows), so CI can track the whole-repo
// latency budget. -budget fails the run (exit 1, unless findings
// already set a code) when the total sweep time exceeds the given
// duration, which is how CI pins the ~10s whole-repo budget.
//
// Exit codes identify what fired, so CI and scripts can react per rule:
//
//	0    clean
//	1    analysis could not run (parse/type/load failure), or the
//	     -budget deadline was exceeded on an otherwise clean run
//	64|b findings; b is a bitmask of the rules that fired:
//	     1 determinism, 2 goroutine, 4 wire-error, 8 print-panic,
//	     16 float64, 32 malformed/stale //fhdnn:allow directive,
//	     128 any dataflow, concurrency or taint rule (aliasing,
//	     lockheld, hotalloc, ctxflow, goleak, chandisc, wgproto,
//	     atomicmix, taintalloc, taintindex, taintloop)
//
// Unix exit codes are eight bits and 64|1|2|4|8|16|32 uses seven of
// them, so the dataflow, concurrency and taint rules share the last
// bit; use -json for per-rule attribution.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"fhdnn/internal/analysis"
)

// ruleBits maps each rule to its exit-code bit. The dataflow rules share
// bit 128: the lower bits are spoken for and exit codes stop at 255.
var ruleBits = map[string]int{
	analysis.RuleDeterminism: 1,
	analysis.RuleGoroutine:   2,
	analysis.RuleWireError:   4,
	analysis.RulePrintPanic:  8,
	analysis.RuleFloat64:     16,
	analysis.RuleAllow:       32,
	analysis.RuleAliasing:    128,
	analysis.RuleLockHeld:    128,
	analysis.RuleHotAlloc:    128,
	analysis.RuleCtxFlow:     128,
	analysis.RuleGoLeak:      128,
	analysis.RuleChanDisc:    128,
	analysis.RuleWgProto:     128,
	analysis.RuleAtomicMix:   128,
	analysis.RuleTaintAlloc:  128,
	analysis.RuleTaintIndex:  128,
	analysis.RuleTaintLoop:   128,
}

func main() {
	var (
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON instead of file:line diagnostics")
		suppressed = flag.Bool("suppressed", false, "also list findings silenced by //fhdnn:allow directives")
		rulesFlag  = flag.String("rules", "", "comma-separated rule subset (default: all of "+strings.Join(analysis.AllRules, ",")+"; the allow directive audit always runs for the enabled rules and is not selectable)")
		rootFlag   = flag.String("root", ".", "module root to lint (directory containing go.mod)")
		timing     = flag.Bool("timing", false, "print per-rule wall time to stderr after the run")
		budget     = flag.Duration("budget", 0, "fail if the whole sweep takes longer than this (0 disables)")
		version    = flag.Bool("version", false, "print analyzer version and rule set, then exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("fhdnn-lint %s (rules: %s)\n", analysis.Version, strings.Join(analysis.AllRules, ","))
		return
	}

	var rules []string
	if *rulesFlag != "" {
		for _, r := range strings.Split(*rulesFlag, ",") {
			r = strings.TrimSpace(r)
			if _, ok := ruleBits[r]; !ok || r == analysis.RuleAllow {
				fmt.Fprintf(os.Stderr, "fhdnn-lint: unknown rule %q (have %s)\n", r, strings.Join(analysis.AllRules, ", "))
				os.Exit(1)
			}
			rules = append(rules, r)
		}
	}

	res, err := analysis.Run(*rootFlag, flag.Args(), rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fhdnn-lint:", err)
		os.Exit(1)
	}

	if *jsonOut {
		out := struct {
			Version    string                `json:"version"`
			Packages   int                   `json:"packages"`
			Findings   []analysis.Diagnostic `json:"findings"`
			Suppressed []analysis.Diagnostic `json:"suppressed,omitempty"`
		}{analysis.Version, res.Packages, res.Diags, nil}
		// nil slices marshal as null; consumers should always see arrays
		if out.Findings == nil {
			out.Findings = []analysis.Diagnostic{}
		}
		if *suppressed {
			out.Suppressed = res.Suppressed
			if out.Suppressed == nil {
				out.Suppressed = []analysis.Diagnostic{}
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "fhdnn-lint:", err)
			os.Exit(1)
		}
	} else {
		for _, d := range res.Diags {
			fmt.Println(d)
		}
		if *suppressed {
			for _, d := range res.Suppressed {
				fmt.Printf("%s (suppressed)\n", d)
			}
		}
		if len(res.Diags) > 0 {
			fmt.Fprintf(os.Stderr, "fhdnn-lint: %d finding(s) in %d package(s)\n", len(res.Diags), res.Packages)
		}
	}

	var total float64
	for _, t := range res.Timing {
		total += t.Seconds
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "fhdnn-lint timing (%d packages):\n", res.Packages)
		for _, t := range res.Timing {
			fmt.Fprintf(os.Stderr, "  %-12s %8.1fms\n", t.Name, t.Seconds*1000)
		}
		fmt.Fprintf(os.Stderr, "  %-12s %8.1fms\n", "total", total*1000)
	}
	overBudget := *budget > 0 && total > budget.Seconds()
	if overBudget {
		fmt.Fprintf(os.Stderr, "fhdnn-lint: sweep took %.1fs, over the %s budget\n", total, *budget)
	}

	if len(res.Diags) == 0 {
		if overBudget {
			os.Exit(1)
		}
		return
	}
	code := 64
	for _, d := range res.Diags {
		code |= ruleBits[d.Rule]
	}
	os.Exit(code)
}
