package main

import (
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"fhdnn/internal/analysis"
)

// The DESIGN.md Sec. 9 exit-bit table is declared authoritative: these
// tests fail when the registered rule set, the documented set, or the
// bit assignments drift apart — the failure mode that already happened
// twice across v2/v3 before the table was pinned.

var designRuleRow = regexp.MustCompile("^\\| `([a-z0-9-]+)` \\| (\\d+) \\|$")

// designRuleTable parses the rule → exit-bit table out of DESIGN.md
// Section 9, in document order.
func designRuleTable(t *testing.T) map[string]int {
	t.Helper()
	data, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	section := false
	out := make(map[string]int)
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "## ") {
			section = strings.HasPrefix(line, "## 9.")
			continue
		}
		if !section {
			continue
		}
		m := designRuleRow.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		bit, err := strconv.Atoi(m[2])
		if err != nil {
			t.Fatalf("bad bit in DESIGN.md row %q: %v", line, err)
		}
		if prev, dup := out[m[1]]; dup {
			// the enforces-tables repeat rule names without bits; only
			// the exit-bit table matches the row pattern, so a true
			// duplicate is a doc bug
			t.Fatalf("rule %s documented twice (bits %d and %d)", m[1], prev, bit)
		}
		out[m[1]] = bit
	}
	if len(out) == 0 {
		t.Fatal("no exit-bit table found in DESIGN.md Sec. 9")
	}
	return out
}

func TestDesignTableMatchesRegisteredRules(t *testing.T) {
	documented := designRuleTable(t)
	registered := append([]string{}, analysis.AllRules...)
	registered = append(registered, analysis.RuleAllow)
	for _, r := range registered {
		if _, ok := documented[r]; !ok {
			t.Errorf("rule %s is registered but missing from the DESIGN.md table", r)
		}
	}
	for r := range documented {
		found := false
		for _, reg := range registered {
			if r == reg {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("rule %s is documented but not registered", r)
		}
	}
}

func TestDesignTableMatchesExitBits(t *testing.T) {
	documented := designRuleTable(t)
	for r, bit := range documented {
		got, ok := ruleBits[r]
		if !ok {
			t.Errorf("documented rule %s has no exit bit in ruleBits", r)
			continue
		}
		if got != bit {
			t.Errorf("rule %s: documented bit %d, registered bit %d", r, bit, got)
		}
	}
	for r, bit := range ruleBits {
		if documented[r] != bit {
			t.Errorf("ruleBits entry %s=%d not documented", r, bit)
		}
	}
}

func TestEveryRuleHasAnExitBit(t *testing.T) {
	for _, r := range analysis.AllRules {
		bit, ok := ruleBits[r]
		if !ok {
			t.Errorf("rule %s has no exit bit", r)
			continue
		}
		if bit != 128 && (bit <= 0 || bit&(bit-1) != 0 || bit > 32) {
			t.Errorf("rule %s has non-power-of-two bit %d", r, bit)
		}
	}
}
