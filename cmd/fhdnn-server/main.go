// Command fhdnn-server runs the federated bundling aggregation service:
// it hosts the global HD model over HTTP, collects client prototype
// updates, and aggregates them round by round (paper Eq. 1).
//
// Usage:
//
//	fhdnn-server -addr :8080 -classes 10 -dim 10000 -min-updates 20 -rounds 100
//
// Fault tolerance: -round-deadline closes a round after that long even if
// fewer than -min-updates arrived (a round with zero updates is carried
// forward), and -max-update-norm quarantines norm-exploded updates
// (non-finite ones are always quarantined, HTTP 422). SIGINT/SIGTERM
// triggers a graceful shutdown that folds any pending updates into the
// model before exiting. The -fault-* flags inject server-side chaos
// (latency and 503 bursts) for rehearsing client retry behavior.
//
// Byzantine robustness: -aggregator selects the commit rule — "bundle"
// (default, sum + 1/N), "fedavg" (sample-weighted mean), "median"
// (coordinate-wise median), "trimmed:0.2" (coordinate-wise trimmed
// mean), or "clip:BOUND[:inner]" to L2-clip every accepted update before
// handing it to an inner policy. The robust rules tolerate a colluding
// minority of poisoned clients that the quarantine gate cannot catch
// (finite, norm-respecting, but adversarial updates).
//
// Scale: -shards splits aggregation across per-shard goroutines (client
// uploads hash-route by identity, round commits fold the shards), with
// -shard-queue bounding each shard's ingest queue (full queue answers
// 429 + Retry-After) and -commit-timeout bounding how long the round
// commit waits for a straggling shard before degrading to partial
// aggregation without it.
//
// When -rounds is reached the server stops accepting updates and, if
// -checkpoint is set, writes the final global model there.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"fhdnn/internal/faults"
	"fhdnn/internal/fedcore"
	"fhdnn/internal/flnet"
)

// sortedKeys returns the map's keys in stable order for logging.
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fhdnn-server:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	classes := flag.Int("classes", 10, "number of classes K")
	dim := flag.Int("dim", 10000, "hypervector dimensionality d")
	minUpdates := flag.Int("min-updates", 2, "client updates that close a round")
	rounds := flag.Int("rounds", 0, "stop after this many rounds (0 = run forever)")
	deadline := flag.Duration("round-deadline", 0, "force-close a round after this long (0 = wait for min-updates)")
	maxNorm := flag.Float64("max-update-norm", 0, "quarantine updates with a larger L2 norm (0 = only non-finite)")
	aggSpec := flag.String("aggregator", "bundle", "aggregation policy: bundle, fedavg, median, trimmed[:frac], clip:bound[:inner]")
	shards := flag.Int("shards", 1, "aggregation shards (client uploads hash-route to per-shard goroutines)")
	shardQueue := flag.Int("shard-queue", 0, "per-shard ingest queue depth; full queue answers 429 (0 = default 256)")
	commitTimeout := flag.Duration("commit-timeout", 0, "how long a round commit waits for a shard before declaring it dead (0 = default 2s)")
	checkpoint := flag.String("checkpoint", "", "write the final model to this file")
	faultRate := flag.Float64("fault-rate", 0, "inject 503s for this fraction of requests (chaos rehearsal)")
	faultLatency := flag.Duration("fault-latency", 0, "inject this much latency per request")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the injected fault sequence")
	flag.Parse()

	agg, err := fedcore.ParseAggregator(*aggSpec)
	if err != nil {
		return err
	}
	srv, err := flnet.NewServer(flnet.ServerConfig{
		NumClasses:    *classes,
		Dim:           *dim,
		MinUpdates:    *minUpdates,
		MaxRounds:     *rounds,
		RoundDeadline: *deadline,
		MaxUpdateNorm: *maxNorm,
		Aggregator:    agg,
		Shards:        *shards,
		ShardQueue:    *shardQueue,
		CommitTimeout: *commitTimeout,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("aggregating %dx%d HD models at http://%s (min %d updates/round, %d rounds, deadline %v, %s aggregation across %d shard(s))",
		*classes, *dim, ln.Addr(), *minUpdates, *rounds, *deadline, fedcore.AggregatorName(agg), *shards)
	codecNames := make([]string, 0, len(fedcore.AllCodecIDs()))
	for _, id := range fedcore.AllCodecIDs() {
		codecNames = append(codecNames, fedcore.CodecName(id))
	}
	log.Printf("accepting compressed wire envelopes: %s (plus the legacy raw-model format)",
		strings.Join(codecNames, ", "))

	handler := srv.Handler()
	if *faultRate > 0 || *faultLatency > 0 {
		handler = faults.NewMiddleware(faults.Config{
			Error5xxRate: *faultRate,
			Latency:      *faultLatency,
			Seed:         *faultSeed,
		}, handler)
		log.Printf("chaos middleware armed: %.0f%% 503s, +%v latency, seed %d",
			*faultRate*100, *faultLatency, *faultSeed)
	}
	httpSrv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}

	// Serve until the configured rounds complete or a signal arrives.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	//fhdnn:allow goroutine long-running HTTP serve loop, not data-parallel work; its error is joined through errc
	go func() { errc <- httpSrv.Serve(ln) }()

	wait := func() error {
		for {
			select {
			case <-ctx.Done():
				log.Printf("signal received: closing the current round and shutting down")
				return nil
			case err := <-errc:
				if errors.Is(err, http.ErrServerClosed) {
					return nil
				}
				return err
			case <-time.After(100 * time.Millisecond):
				if *rounds > 0 && srv.Closed() {
					log.Printf("training finished after %d rounds", *rounds)
					return nil
				}
			}
		}
	}
	if err := wait(); err != nil {
		return err
	}

	// Graceful teardown: fold pending updates into the model, then stop
	// accepting connections.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}

	st := srv.Stats()
	log.Printf("final stats: %d accepted, %d rejected, %d quarantined, %d duplicates, %d deadline-forced rounds, %d bytes received",
		st.UpdatesAccepted, st.UpdatesRejected, st.UpdatesQuarantined,
		st.DuplicateUpdates, st.RoundsForcedByDeadline, st.BytesReceived)
	if st.UpdatesThrottled > 0 || st.ShardTimeouts > 0 || st.PartialCommits > 0 || st.DeadShards > 0 {
		log.Printf("shard health: %d throttled (429), %d shard timeouts, %d partial commits, %d dead shard(s)",
			st.UpdatesThrottled, st.ShardTimeouts, st.PartialCommits, st.DeadShards)
	}
	if len(st.QuarantinedByReason) > 0 {
		parts := make([]string, 0, len(st.QuarantinedByReason))
		for _, reason := range sortedKeys(st.QuarantinedByReason) {
			parts = append(parts, fmt.Sprintf("%s=%d", reason, st.QuarantinedByReason[reason]))
		}
		log.Printf("quarantined by reason: %s", strings.Join(parts, ", "))
	}
	if st.UpdatesClipped > 0 {
		log.Printf("updates norm-clipped by the aggregation policy: %d", st.UpdatesClipped)
	}
	if len(st.UpdatesByCodec) > 0 {
		parts := make([]string, 0, len(st.UpdatesByCodec))
		for _, name := range sortedKeys(st.UpdatesByCodec) {
			parts = append(parts, fmt.Sprintf("%s=%d", name, st.UpdatesByCodec[name]))
		}
		log.Printf("updates by codec: %s", strings.Join(parts, ", "))
	}

	if *checkpoint != "" {
		f, err := os.Create(*checkpoint)
		if err != nil {
			return err
		}
		model, _ := srv.Model()
		if _, err := model.WriteTo(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("final model written to %s", *checkpoint)
	}
	return nil
}
