// Command fhdnn-server runs the federated bundling aggregation service:
// it hosts the global HD model over HTTP, collects client prototype
// updates, and aggregates them round by round (paper Eq. 1).
//
// Usage:
//
//	fhdnn-server -addr :8080 -classes 10 -dim 10000 -min-updates 20 -rounds 100
//
// When -rounds is reached the server stops accepting updates and, if
// -checkpoint is set, writes the final global model there.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"fhdnn/internal/flnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fhdnn-server:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	classes := flag.Int("classes", 10, "number of classes K")
	dim := flag.Int("dim", 10000, "hypervector dimensionality d")
	minUpdates := flag.Int("min-updates", 2, "client updates that close a round")
	rounds := flag.Int("rounds", 0, "stop after this many rounds (0 = run forever)")
	checkpoint := flag.String("checkpoint", "", "write the final model to this file")
	flag.Parse()

	srv, err := flnet.NewServer(flnet.ServerConfig{
		NumClasses: *classes,
		Dim:        *dim,
		MinUpdates: *minUpdates,
		MaxRounds:  *rounds,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("aggregating %dx%d HD models at http://%s (min %d updates/round, %d rounds)",
		*classes, *dim, ln.Addr(), *minUpdates, *rounds)

	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	if *rounds == 0 {
		return httpSrv.Serve(ln)
	}

	// Serve until the configured rounds complete, then checkpoint.
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	for !srv.Closed() {
		select {
		case err := <-errc:
			return err
		case <-time.After(100 * time.Millisecond):
		}
	}
	log.Printf("training finished after %d rounds", *rounds)
	if *checkpoint != "" {
		f, err := os.Create(*checkpoint)
		if err != nil {
			return err
		}
		model, _ := srv.Model()
		if _, err := model.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("final model written to %s", *checkpoint)
	}
	return httpSrv.Close()
}
