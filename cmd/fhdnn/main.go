// Command fhdnn regenerates every table and figure of the FHDnn paper's
// evaluation from this repository's from-scratch implementation.
//
// Usage:
//
//	fhdnn [flags] <experiment> [experiment...]
//	fhdnn all
//
// Experiments: fig4 fig5 fig6 fig7 fig8 table1 comm convergence replicate
// lpwan eq4 compression subsample energy fleet async poison ablations
//
// Flags select the scale (-scale small|medium|paper), seed, and sweep
// density; -csv DIR additionally writes every result table as CSV. Small
// finishes in seconds; paper matches the original operating point (32x32
// images, 100 clients, 100 rounds, d=10000) and takes days of pure-Go CPU
// time for the CNN sweeps.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fhdnn/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fhdnn:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fhdnn", flag.ContinueOnError)
	scaleName := fs.String("scale", "small", "experiment scale: small, medium, or paper")
	seed := fs.Int64("seed", 1, "master random seed")
	rounds := fs.Int("rounds", 0, "override communication rounds (0 keeps the scale default)")
	clients := fs.Int("clients", 0, "override number of clients (0 keeps the scale default)")
	hdDim := fs.Int("hddim", 0, "override hypervector dimensionality (0 keeps the scale default)")
	full := fs.Bool("full", false, "use the paper's full sweep grids instead of the reduced ones")
	csvDir := fs.String("csv", "", "also write each result table as CSV into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment given; choose from %s", strings.Join(names(), " "))
	}

	var s experiments.Scale
	switch *scaleName {
	case "small":
		s = experiments.Small()
	case "medium":
		s = experiments.Medium()
	case "paper":
		s = experiments.Paper()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	s.Seed = *seed
	if *rounds > 0 {
		s.Rounds = *rounds
	}
	if *clients > 0 {
		s.NumClients = *clients
	}
	if *hdDim > 0 {
		s.HDDim = *hdDim
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	want := fs.Args()
	if len(want) == 1 && want[0] == "all" {
		want = names()
	}
	for _, name := range want {
		runner, ok := runners[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q; choose from %s", name, strings.Join(names(), " "))
		}
		start := time.Now()
		tables := runner(s, *full)
		for _, t := range tables {
			fmt.Print(t, "\n")
		}
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, name, tables); err != nil {
				return err
			}
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// writeCSVs persists each table of one experiment.
func writeCSVs(dir, experiment string, tables []*experiments.Table) error {
	for i, t := range tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", experiment, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func names() []string {
	return []string{"fig4", "fig5", "fig6", "fig7", "fig8", "table1", "comm",
		"convergence", "replicate", "lpwan", "eq4", "compression", "subsample", "energy", "fleet", "async", "poison", "ablations"}
}

var runners = map[string]func(s experiments.Scale, full bool) []*experiments.Table{
	"poison": func(s experiments.Scale, full bool) []*experiments.Table {
		const frac = 0.4
		rows := experiments.PoisonRobustness(s, frac,
			experiments.DefaultPoisonAggregators(), experiments.DefaultPoisonAttacks())
		return []*experiments.Table{experiments.PoisonTable(rows, frac)}
	},
	"fig4": func(s experiments.Scale, full bool) []*experiments.Table {
		return []*experiments.Table{experiments.Fig4Table(experiments.Fig4NoiseRobustness(s, nil))}
	},
	"fig5": func(s experiments.Scale, full bool) []*experiments.Table {
		return []*experiments.Table{experiments.Fig5Table(experiments.Fig5PartialInfo(s, nil))}
	},
	"fig6": func(s experiments.Scale, full bool) []*experiments.Table {
		grid := experiments.SmallHyperGrid()
		if full {
			grid = experiments.DefaultHyperGrid()
		}
		return experiments.Fig6Tables(experiments.Fig6Hyperparams(s, grid, 0))
	},
	"fig7": func(s experiments.Scale, full bool) []*experiments.Table {
		return experiments.Fig7Tables(experiments.Fig7Accuracy(s, nil))
	},
	"fig8": func(s experiments.Scale, full bool) []*experiments.Table {
		levels := experiments.SmallFig8Levels()
		if full {
			levels = experiments.DefaultFig8Levels()
		}
		return experiments.Fig8Tables(experiments.Fig8Unreliable(s, levels, nil))
	},
	"table1": func(s experiments.Scale, full bool) []*experiments.Table {
		return []*experiments.Table{
			experiments.Table1Render(
				"Table 1: performance on edge devices (calibrated model, paper workload)",
				experiments.Table1EdgeDevices()),
			experiments.Table1Render(
				"Table 1 extrapolated: E=4 local epochs",
				experiments.Table1Scaled(500, 4, 10000)),
		}
	},
	"comm": func(s experiments.Scale, full bool) []*experiments.Table {
		// Measure rounds-to-convergence at this scale, then map onto the
		// paper's link constants.
		res := experiments.Fig7Accuracy(s, []string{"cifar10"})
		hd := res[0].FHDnn
		cnn := res[0].ResNet
		hdRounds := hd.RoundsToAccuracy(0.95 * hd.BestAccuracy())
		cnnRounds := cnn.RoundsToAccuracy(0.95 * cnn.BestAccuracy())
		if cnnRounds < 0 {
			cnnRounds = 3 * s.Rounds // CNN did not converge within the budget
		}
		fmt.Printf("measured convergence at scale %q: FHDnn %d rounds, CNN %d rounds\n\n",
			scaleLabel(s), hdRounds, cnnRounds)
		return []*experiments.Table{
			experiments.CommTable(experiments.CommEfficiency(hdRounds, cnnRounds, 100)),
		}
	},
	"convergence": func(s experiments.Scale, full bool) []*experiments.Table {
		return []*experiments.Table{experiments.ConvergenceTable(experiments.Convergence(s, 0.05))}
	},
	"replicate": func(s experiments.Scale, full bool) []*experiments.Table {
		seeds := []int64{1, 2, 3}
		if full {
			seeds = []int64{1, 2, 3, 4, 5, 6, 7, 8}
		}
		return []*experiments.Table{
			experiments.ReplicateTable(experiments.Replicate(s, "cifar10", seeds)),
		}
	},
	"lpwan": func(s experiments.Scale, full bool) []*experiments.Table {
		return []*experiments.Table{experiments.LPWANTable(experiments.LPWANBudget())}
	},
	"eq4": func(s experiments.Scale, full bool) []*experiments.Table {
		return []*experiments.Table{experiments.Eq4Table(experiments.Eq4NoisySNRGain(s, nil, 10))}
	},
	"compression": func(s experiments.Scale, full bool) []*experiments.Table {
		return []*experiments.Table{experiments.CompressionTable(experiments.CompressionComparison(s))}
	},
	"subsample": func(s experiments.Scale, full bool) []*experiments.Table {
		return []*experiments.Table{experiments.SubsampleTable(experiments.SubsampleSweep(s, nil))}
	},
	"energy": func(s experiments.Scale, full bool) []*experiments.Table {
		return experiments.EnergyToAccuracy(25, 75)
	},
	"fleet": func(s experiments.Scale, full bool) []*experiments.Table {
		cfg := experiments.DefaultFleet()
		return []*experiments.Table{experiments.FleetTable(cfg, experiments.FleetRoundTime(cfg))}
	},
	"async": func(s experiments.Scale, full bool) []*experiments.Table {
		return []*experiments.Table{experiments.AsyncTable(experiments.AsyncVsSync(s))}
	},
	"ablations": func(s experiments.Scale, full bool) []*experiments.Table {
		return []*experiments.Table{
			experiments.AblationTable("Ablation: hypervector dimensionality",
				experiments.AblationDim(s, nil)),
			experiments.AblationTable("Ablation: binarized vs raw encoding",
				experiments.AblationSign(s)),
			experiments.AblationTable("Ablation: quantizer under bit errors",
				experiments.AblationQuantizer(s, 1e-3)),
			experiments.AblationTable("Ablation: local refinement epochs",
				experiments.AblationRefine(s, nil)),
			experiments.AblationTable("Ablation: fixed vs adaptive refinement",
				experiments.AblationAdaptive(s)),
			experiments.AblationTable("Ablation: float vs bit-packed inference",
				experiments.AblationBinary(s)),
			experiments.AblationTable("Ablation: iid vs bursty packet loss",
				experiments.AblationBursty(s, 0.2)),
			experiments.AblationTable("Ablation: feature extractor",
				experiments.AblationExtractor(s, 0)),
		}
	},
}

func scaleLabel(s experiments.Scale) string {
	return fmt.Sprintf("%dpx/%dclients/%drounds", s.ImgSize, s.NumClients, s.Rounds)
}
