package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunRejectsNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no experiment should be an error")
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	err := run([]string{"-scale", "galactic", "table1"})
	if err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	err := run([]string{"fig99"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunTable1(t *testing.T) {
	// table1 is pure arithmetic — safe to execute in a unit test.
	if err := run([]string{"table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLPWAN(t *testing.T) {
	if err := run([]string{"lpwan"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOverrides(t *testing.T) {
	// fig4 with overridden knobs exercises the flag plumbing end to end.
	if err := run([]string{"-seed", "7", "-rounds", "3", "-clients", "4", "-hddim", "512", "fig4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-csv", dir, "lpwan"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/lpwan_0.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "SF") {
		t.Fatal("CSV export missing header")
	}
}

func TestNamesMatchRunners(t *testing.T) {
	for _, n := range names() {
		if _, ok := runners[n]; !ok {
			t.Fatalf("experiment %q listed but has no runner", n)
		}
	}
	if len(names()) != len(runners) {
		t.Fatalf("%d names vs %d runners", len(names()), len(runners))
	}
}
