// Command fhdnn-loadgen stress-drives a flnet aggregation server with a
// large simulated client fleet over real HTTP — the load harness for the
// sharded round pipeline. It spins up an in-process server (or targets
// an external one with -url), then pushes one update per client per
// round through a bounded worker pool, mixing wire codecs and optionally
// lacing in a poisoner fraction whose non-finite updates exercise the
// quarantine gate. Throttled uploads (429) are retried honoring the
// server's Retry-After hint, so the harness observes backpressure the
// way a production fleet would.
//
// The run reports rounds/sec, upload-latency percentiles (p50/p95/p99/
// max), bytes per round, and the server's final stats snapshot —
// including the per-shard breakdown — as JSON:
//
//	go run ./cmd/fhdnn-loadgen -clients 100000 -shards 8 -rounds 3 -out LOADGEN.json
//
// Against an external server (-url), configure that server with
// -min-updates equal to the clean (non-poisoner) client count so each
// dispatch wave closes exactly one round.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fhdnn/internal/compress"
	"fhdnn/internal/flnet"
	"fhdnn/internal/hdc"
)

// LatencySummary is the upload-latency percentile block of the report.
// Latencies are measured per PushUpdate call, retries included — the
// client-visible time to get an update accepted (or refused).
type LatencySummary struct {
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// Report is the JSON result of one load run.
type Report struct {
	GoVersion   string   `json:"go_version"`
	NumCPU      int      `json:"num_cpu"`
	Clients     int      `json:"clients"`
	Concurrency int      `json:"concurrency"`
	Rounds      int      `json:"rounds"`
	Shards      int      `json:"shards"`
	Classes     int      `json:"classes"`
	Dim         int      `json:"dim"`
	PoisonFrac  float64  `json:"poison_frac"`
	Codecs      []string `json:"codecs"`

	ElapsedSec    float64 `json:"elapsed_sec"`
	RoundsPerSec  float64 `json:"rounds_per_sec"`
	UploadsPerSec float64 `json:"uploads_per_sec"`
	BytesPerRound float64 `json:"bytes_per_round"`

	Uploads     int64 `json:"uploads"`
	Accepted    int64 `json:"accepted"`
	Quarantined int64 `json:"quarantined"`
	Stale       int64 `json:"stale"`
	Throttled   int64 `json:"throttled_gave_up"`
	Gone        int64 `json:"refused_closed"`
	Failed      int64 `json:"failed"`

	Latency LatencySummary `json:"upload_latency"`
	Server  flnet.Stats    `json:"server_stats"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fhdnn-loadgen:", err)
		os.Exit(1)
	}
}

// parseCodecMix turns a comma list ("legacy,raw,float16,int8,topk:0.25")
// into the per-client codec cycle; nil entries mean the legacy raw-model
// format.
func parseCodecMix(spec string) ([]compress.Codec, []string, error) {
	var mix []compress.Codec
	var names []string
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		switch {
		case name == "legacy":
			mix = append(mix, nil)
		case name == "raw":
			mix = append(mix, compress.Raw{})
		case name == "float16":
			mix = append(mix, compress.Float16{})
		case name == "int8":
			mix = append(mix, compress.Int8{})
		case strings.HasPrefix(name, "topk:"):
			frac, err := strconv.ParseFloat(name[len("topk:"):], 64)
			if err != nil || !(frac > 0) || frac > 1 {
				return nil, nil, fmt.Errorf("bad topk fraction in codec %q", name)
			}
			mix = append(mix, compress.TopK{Frac: frac})
		default:
			return nil, nil, fmt.Errorf("unknown codec %q (want legacy, raw, float16, int8, topk:FRAC)", name)
		}
		names = append(names, name)
	}
	if len(mix) == 0 {
		return nil, nil, errors.New("empty codec mix")
	}
	return mix, names, nil
}

// isPoisoner deterministically spreads the poisoner fraction evenly over
// the client index space: client i poisons exactly when the accumulated
// fraction crosses an integer at i, which yields floor(clients*frac)
// poisoners for any fleet size.
func isPoisoner(client int, frac float64) bool {
	return math.Floor(float64(client+1)*frac) > math.Floor(float64(client)*frac)
}

func run() error {
	clients := flag.Int("clients", 100000, "simulated clients (one update per client per round)")
	concurrency := flag.Int("concurrency", 256, "concurrent upload workers")
	rounds := flag.Int("rounds", 3, "federation rounds to drive")
	shards := flag.Int("shards", 8, "server aggregation shards (in-process server only)")
	shardQueue := flag.Int("shard-queue", 0, "per-shard queue depth, 0 = server default (in-process only)")
	classes := flag.Int("classes", 2, "model classes K")
	dim := flag.Int("dim", 512, "hypervector dimensionality d")
	poisonFrac := flag.Float64("poison-frac", 0.01, "fraction of clients sending non-finite (quarantine-bound) updates")
	codecSpec := flag.String("codecs", "legacy,raw,float16,int8", "comma-separated codec cycle assigned to clients round-robin")
	urlFlag := flag.String("url", "", "drive this external server instead of an in-process one")
	out := flag.String("out", "LOADGEN.json", "write the JSON report here ('' to skip)")
	flag.Parse()

	if *clients <= 0 || *rounds <= 0 || *concurrency <= 0 {
		return errors.New("clients, rounds, and concurrency must be positive")
	}
	mix, mixNames, err := parseCodecMix(*codecSpec)
	if err != nil {
		return err
	}
	clean := 0
	for i := 0; i < *clients; i++ {
		if !isPoisoner(i, *poisonFrac) {
			clean++
		}
	}
	if clean == 0 {
		return errors.New("poison-frac leaves no clean clients to close a round")
	}

	// Target server: external, or an in-process sharded one on loopback.
	baseURL := *urlFlag
	var srv *flnet.Server
	var httpSrv *http.Server
	if baseURL == "" {
		srv, err = flnet.NewServer(flnet.ServerConfig{
			NumClasses: *classes,
			Dim:        *dim,
			MinUpdates: clean,
			MaxRounds:  *rounds,
			Shards:     *shards,
			ShardQueue: *shardQueue,
		})
		if err != nil {
			return err
		}
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			return lerr
		}
		httpSrv = &http.Server{Handler: srv.Handler()}
		//fhdnn:allow goroutine long-running HTTP serve loop for the in-process target; torn down via Close at the end of the run
		go func() { _ = httpSrv.Serve(ln) }()
		baseURL = "http://" + ln.Addr().String()
		fmt.Printf("in-process server at %s: %d shards, min %d updates/round\n", baseURL, *shards, clean)
	}

	// One shared transport sized for the pool, so uploads reuse
	// keep-alive connections instead of exhausting ephemeral ports.
	transport := &http.Transport{
		MaxIdleConns:        2 * *concurrency,
		MaxIdleConnsPerHost: 2 * *concurrency,
	}
	httpc := &http.Client{Transport: transport}
	ctx := context.Background()

	var accepted, quarantined, stale, throttled, gone, failed atomic.Int64
	latencies := make([][]time.Duration, *concurrency)

	type job struct{ round, client int }
	jobs := make(chan job, 4**concurrency)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		w := w
		latencies[w] = make([]time.Duration, 0, (*clients / *concurrency + 1)**rounds)
		//fhdnn:allow goroutine bounded upload-worker pool; joined per round through the dispatch WaitGroup and drained by closing jobs
		go func() { //fhdnn:allow wgproto Add(*clients) precedes every job send and Done only runs after a receive, so Add happens-before each Done through the jobs channel
			c := &flnet.Client{
				BaseURL:    baseURL,
				HTTPClient: httpc,
				Retry: &flnet.RetryPolicy{
					MaxAttempts: 8,
					BaseDelay:   20 * time.Millisecond,
					MaxDelay:    2 * time.Second,
				},
			}
			// Prime the codec advertisement so enveloped uploads negotiate.
			_, _ = c.Round(ctx)
			m := hdc.NewModel(*classes, *dim)
			flat := m.Flat()
			for jb := range jobs {
				c.ID = "load-" + strconv.Itoa(jb.client)
				poison := isPoisoner(jb.client, *poisonFrac)
				if poison {
					c.Codec = nil // envelopes quantize; carry the NaN verbatim
				} else {
					c.Codec = mix[jb.client%len(mix)]
				}
				base := float32(jb.client%23 - 11)
				for j := range flat {
					flat[j] = base + float32((j+jb.round)%7)
				}
				if poison {
					flat[0] = float32(math.NaN())
				}
				t0 := time.Now()
				err := c.PushUpdate(ctx, jb.round, m)
				latencies[w] = append(latencies[w], time.Since(t0))
				var quar flnet.ErrQuarantined
				var st flnet.ErrStaleRound
				var thr flnet.ErrThrottled
				var he *flnet.HTTPError
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.As(err, &quar):
					quarantined.Add(1)
				case errors.As(err, &st):
					stale.Add(1)
				case errors.As(err, &thr):
					throttled.Add(1)
				case errors.As(err, &he) && he.StatusCode == http.StatusGone:
					// A straggler landing after MaxRounds closed the server —
					// the expected end-of-training refusal, not a failure.
					gone.Add(1)
				default:
					failed.Add(1)
				}
				wg.Done()
			}
		}()
	}

	poll := &flnet.Client{BaseURL: baseURL, HTTPClient: httpc,
		Retry: &flnet.RetryPolicy{MaxAttempts: 6}}
	start := time.Now()
	for r := 1; r <= *rounds; r++ {
		wg.Add(*clients)
		for i := 0; i < *clients; i++ {
			jobs <- job{round: r, client: i}
		}
		wg.Wait()
		// The MinUpdates-th clean upload closes the round synchronously;
		// poll only to fail loudly if an external server is misconfigured.
		waitCtx, cancel := context.WithTimeout(ctx, time.Minute)
		info, werr := poll.WaitForRound(waitCtx, r+1, 10*time.Millisecond)
		cancel()
		if werr != nil {
			return fmt.Errorf("round %d never closed (external -min-updates must equal the clean client count %d): %w", r, clean, werr)
		}
		fmt.Printf("round %d closed (server at round %d, closed=%v)\n", r, info.Round, info.Closed)
	}
	elapsed := time.Since(start)
	close(jobs)

	// Final server snapshot: direct for the in-process server, /v1/stats
	// for an external one.
	var stats flnet.Stats
	if srv != nil {
		_ = srv.Shutdown(ctx)
		stats = srv.Stats()
		_ = httpSrv.Close()
	} else {
		resp, gerr := httpc.Get(baseURL + "/v1/stats")
		if gerr != nil {
			return gerr
		}
		derr := json.NewDecoder(resp.Body).Decode(&stats)
		_ = resp.Body.Close()
		if derr != nil {
			return derr
		}
	}

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Millisecond)
	}
	uploads := int64(*clients) * int64(*rounds)
	rep := Report{
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Clients:     *clients,
		Concurrency: *concurrency,
		Rounds:      *rounds,
		Shards:      *shards,
		Classes:     *classes,
		Dim:         *dim,
		PoisonFrac:  *poisonFrac,
		Codecs:      mixNames,

		ElapsedSec:    elapsed.Seconds(),
		RoundsPerSec:  float64(*rounds) / elapsed.Seconds(),
		UploadsPerSec: float64(uploads) / elapsed.Seconds(),
		BytesPerRound: float64(stats.BytesReceived) / float64(*rounds),

		Uploads:     uploads,
		Accepted:    accepted.Load(),
		Quarantined: quarantined.Load(),
		Stale:       stale.Load(),
		Throttled:   throttled.Load(),
		Gone:        gone.Load(),
		Failed:      failed.Load(),

		Latency: LatencySummary{
			P50Ms: pct(0.50), P95Ms: pct(0.95), P99Ms: pct(0.99), MaxMs: pct(1.0),
		},
		Server: stats,
	}
	fmt.Printf("%d uploads in %.2fs: %.2f rounds/s, %.0f uploads/s\n",
		uploads, rep.ElapsedSec, rep.RoundsPerSec, rep.UploadsPerSec)
	fmt.Printf("accepted %d, quarantined %d, stale %d, throttled %d, closed-out %d, failed %d\n",
		rep.Accepted, rep.Quarantined, rep.Stale, rep.Throttled, rep.Gone, rep.Failed)
	fmt.Printf("upload latency p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms\n",
		rep.Latency.P50Ms, rep.Latency.P95Ms, rep.Latency.P99Ms, rep.Latency.MaxMs)
	fmt.Printf("server: %.0f bytes/round, %d throttled (429), %d shard timeouts, %d partial commits\n",
		rep.BytesPerRound, stats.UpdatesThrottled, stats.ShardTimeouts, stats.PartialCommits)
	if rep.Failed > 0 {
		fmt.Printf("WARNING: %d uploads failed outright\n", rep.Failed)
	}

	if *out != "" {
		buf, merr := json.MarshalIndent(&rep, "", "  ")
		if merr != nil {
			return merr
		}
		buf = append(buf, '\n')
		if werr := os.WriteFile(*out, buf, 0o644); werr != nil {
			return werr
		}
		fmt.Println("wrote", *out)
	}
	return nil
}
