// Command fhdnn-client is one federated FHDnn edge client: it derives the
// shared frozen pipeline (feature extractor + HD encoder) from the common
// seed, encodes its local data, and participates in rounds against an
// fhdnn-server — optionally through a simulated lossy uplink.
//
// Local data is synthetic in this reproduction (see DESIGN.md): each
// client generates its shard of the CIFAR-like dataset from the shared
// data seed plus its client id, which mirrors naturally partitioned
// sensors observing the same world.
//
// Requests are retried with exponential backoff (-retries, -retry-base),
// and the -fault-* flags inject deterministic transport chaos (connection
// failures, truncated bodies, latency) for rehearsing unreliable links.
// -codec compresses uploads into the negotiated wire envelope ("raw",
// "float16", "int8", "topk" or "topk:0.25"); against a server that does
// not advertise the codec, the client falls back to the legacy format.
// -poison turns the client Byzantine: it trains honestly, then corrupts
// the update just before upload ("signflip", "scale:-2", "noise:1",
// "drift:2") — the adversarial half of the robust-aggregation story,
// meant to be pointed at a server running -aggregator median or trimmed.
//
// Usage:
//
//	fhdnn-client -server http://127.0.0.1:8080 -id 0 -codec int8 -loss 0.2
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"time"

	"fhdnn/internal/channel"
	"fhdnn/internal/core"
	"fhdnn/internal/dataset"
	"fhdnn/internal/faults"
	"fhdnn/internal/fedcore"
	"fhdnn/internal/flnet"
	"fhdnn/internal/hdc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fhdnn-client:", err)
		os.Exit(1)
	}
}

func run() error {
	server := flag.String("server", "http://127.0.0.1:8080", "aggregation server URL")
	id := flag.Int("id", 0, "client id (selects this client's data shard)")
	seed := flag.Int64("seed", 1, "shared pipeline seed (must match all clients)")
	clients := flag.Int("clients", 10, "total number of clients (for partitioning)")
	imgSize := flag.Int("img", 8, "image size of the synthetic dataset")
	dim := flag.Int("dim", 2048, "hypervector dimensionality (must match the server)")
	epochs := flag.Int("epochs", 2, "local refinement epochs E")
	perClass := flag.Int("per-class", 40, "training examples per class (whole federation)")
	codecName := flag.String("codec", "", "compress uploads with this codec (raw, float16, int8, topk[:frac]; empty = legacy format)")
	poison := flag.String("poison", "", "turn this client Byzantine: signflip, scale:L, noise:S, drift:L (empty = honest)")
	loss := flag.Float64("loss", 0, "simulated uplink packet loss rate")
	snr := flag.Float64("snr", 0, "simulated uplink AWGN SNR in dB (0 = off)")
	timeout := flag.Duration("timeout", 10*time.Minute, "give up after this long")
	retries := flag.Int("retries", 4, "attempts per request before giving up (1 = no retry)")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "initial retry backoff")
	faultRate := flag.Float64("fault-rate", 0, "inject transport failures for this fraction of requests")
	faultTruncate := flag.Float64("fault-truncate", 0, "truncate this fraction of response bodies")
	faultLatency := flag.Duration("fault-latency", 0, "inject this much latency per request")
	faultSeed := flag.Int64("fault-seed", 0, "seed for injected faults (default: derived from -seed and -id)")
	flag.Parse()

	if *id < 0 || *id >= *clients {
		return fmt.Errorf("client id %d out of range [0,%d)", *id, *clients)
	}

	// Shared frozen pipeline.
	train, _ := dataset.GenerateImages(dataset.CIFAR10Like(*imgSize, *perClass, 1, *seed))
	part := dataset.PartitionIID(train.Len(), *clients, rand.New(rand.NewSource(*seed)))
	extractor := core.NewRandomConvExtractor(*seed, train.X.Dim(1), 8, *imgSize)
	fhd := core.New(extractor, core.Config{
		HDDim: *dim, NumClasses: train.NumClasses, Seed: *seed, Binarize: true})

	// This client's shard, encoded once.
	idx := part[*id]
	shard := train.Subset(idx)
	encoded := fhd.EncodeDataset(shard)
	log.Printf("client %d: %d local examples, %d-dim hypervectors", *id, shard.Len(), *dim)

	var uplink channel.Channel
	switch {
	case *loss > 0:
		uplink = channel.PacketLoss{Rate: *loss}
	case *snr > 0:
		uplink = channel.AWGN{SNRdB: *snr}
	}
	cl := &flnet.Client{
		BaseURL: *server,
		ID:      fmt.Sprintf("client-%d", *id),
		Uplink:  uplink,
	}
	if *codecName != "" {
		codec, err := fedcore.ParseCodec(*codecName)
		if err != nil {
			return err
		}
		cl.Codec = codec
		n := train.NumClasses * *dim
		log.Printf("client %d: uploading %s envelopes (%d bytes/update vs %d raw float32)",
			*id, codec.Name(), fedcore.WireBytes(codec, n), 4*n)
	}
	if uplink != nil {
		cl.Rng = rand.New(rand.NewSource(*seed + int64(*id)))
		log.Printf("client %d: uplink %s", *id, uplink.Name())
	}
	if *retries > 1 {
		cl.Retry = &flnet.RetryPolicy{MaxAttempts: *retries, BaseDelay: *retryBase}
	}
	if *faultRate > 0 || *faultTruncate > 0 || *faultLatency > 0 {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed<<16 + int64(*id)
		}
		cl.HTTPClient = &http.Client{Transport: faults.NewTransport(faults.Config{
			FailRate:     *faultRate,
			TruncateRate: *faultTruncate,
			Latency:      *faultLatency,
			Seed:         fseed,
		})}
		log.Printf("client %d: fault injection armed (fail %.0f%%, truncate %.0f%%, +%v latency, seed %d)",
			*id, *faultRate*100, *faultTruncate*100, *faultLatency, fseed)
	}

	lt := &flnet.LocalTrainer{
		Client:  cl,
		Encoded: encoded,
		Labels:  shard.Labels,
		Epochs:  *epochs,
		Poll:    200 * time.Millisecond,
	}
	if *poison != "" {
		attacker, err := faults.ParseAttack(*poison)
		if err != nil {
			return err
		}
		attacker.Seed = *seed
		cid := *id
		lt.Tamper = func(round int, local, global *hdc.Model) {
			attacker.Corrupt(local.Flat(), global.Flat(), round, cid)
		}
		log.Printf("client %d: BYZANTINE — poisoning every upload with %s", *id, attacker)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	n, err := lt.Participate(ctx)
	if err != nil {
		return err
	}
	log.Printf("client %d: contributed to %d rounds, server closed", *id, n)
	return nil
}
