// Command fhdnn-inspect prints a summary of a serialized FHDnn artifact:
// an HD model (FHDM, as written by fhdnn-server -checkpoint), an HD
// encoder (FHDE), or a full model checkpoint (FHDN..., as written by
// fhdnn-train / core.FHDnn.Save). It reports dimensions, per-class norms,
// and inter-class similarity — the quick health check an operator wants
// before shipping a global model back to a fleet.
//
// Usage:
//
//	fhdnn-inspect model.fhdnn [model2.fhdm ...]
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"fhdnn/internal/hdc"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: fhdnn-inspect <file> [file...]")
		os.Exit(2)
	}
	exit := 0
	for _, path := range os.Args[1:] {
		if err := inspect(path); err != nil {
			fmt.Fprintf(os.Stderr, "fhdnn-inspect: %s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func inspect(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < 4 {
		return fmt.Errorf("file too short (%d bytes)", len(data))
	}
	switch string(data[:4]) {
	case "FHDN": // full checkpoint: nn params, then encoder, then model
		r := bytes.NewReader(data)
		nParams, nValues, err := skipNNCheckpoint(r)
		if err != nil {
			return err
		}
		fmt.Printf("%s: full FHDnn checkpoint (%d bytes)\n", path, len(data))
		fmt.Printf("  extractor: %d parameter tensors, %d weights\n", nParams, nValues)
		e, err := hdc.ReadEncoder(r)
		if err != nil {
			return err
		}
		fmt.Printf("  encoder: d=%d n=%d binarize=%v\n", e.D, e.N, e.Binarize)
		m, err := hdc.ReadModel(r)
		if err != nil {
			return err
		}
		printModel(path, m, len(data))
	case "FHDM":
		m, err := hdc.ReadModel(bytes.NewReader(data))
		if err != nil {
			return err
		}
		printModel(path, m, len(data))
	case "FHDE":
		e, err := hdc.ReadEncoder(bytes.NewReader(data))
		if err != nil {
			return err
		}
		fmt.Printf("%s: HD encoder, d=%d n=%d binarize=%v (%d bytes)\n",
			path, e.D, e.N, e.Binarize, len(data))
	default:
		return fmt.Errorf("unknown magic %q (want FHDM or FHDE)", data[:4])
	}
	return nil
}

// skipNNCheckpoint reads past an nn parameter checkpoint, returning the
// tensor and scalar counts.
func skipNNCheckpoint(r *bytes.Reader) (tensors, values int, err error) {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, err
	}
	count := int(binary.LittleEndian.Uint32(hdr[4:]))
	for i := 0; i < count; i++ {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return 0, 0, fmt.Errorf("param %d length: %w", i, err)
		}
		n := int(binary.LittleEndian.Uint32(lenBuf[:]))
		if _, err := r.Seek(int64(4*n), io.SeekCurrent); err != nil {
			return 0, 0, err
		}
		values += n
	}
	return count, values, nil
}

func printModel(path string, m *hdc.Model, size int) {
	fmt.Printf("%s: HD model, %d classes x %d dims (%d bytes)\n", path, m.K, m.D, size)
	fmt.Println("  class   L2 norm     max|c|")
	for k := 0; k < m.K; k++ {
		row := m.Class(k)
		maxAbs := float32(0)
		for _, v := range row {
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		fmt.Printf("  %5d   %9.2f  %9.2f\n", k, hdc.Norm(row), maxAbs)
	}
	// inter-class similarity: high values warn of confusable prototypes
	worst := -2.0
	wa, wb := 0, 0
	for a := 0; a < m.K; a++ {
		for b := a + 1; b < m.K; b++ {
			if sim := hdc.Cosine(m.Class(a), m.Class(b)); sim > worst {
				worst, wa, wb = sim, a, b
			}
		}
	}
	if m.K > 1 {
		fmt.Printf("  most similar classes: %d vs %d (cos %.3f)\n", wa, wb, worst)
	}
}
