GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the whole module; the flnet/faults chaos tests
# are written to be meaningful under -race (concurrent round closing,
# retry storms, deadline timers).
race:
	$(GO) test -race ./...

# Refresh the tracked kernel baseline (BENCH_pr3.json), then run the full
# benchmark suite.
bench:
	$(GO) run ./cmd/fhdnn-bench -out BENCH_pr3.json
	$(GO) test -bench=. -benchmem ./...

# What CI runs on every PR.
ci: vet race
