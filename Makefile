GO ?= go

.PHONY: build test race debugguard vet lint lint-json bench chaos loadgen check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the whole module; the flnet/faults chaos tests
# are written to be meaningful under -race (concurrent round closing,
# retry storms, deadline timers). Shuffled execution order with -count=1
# keeps tests honest about hidden ordering dependencies and stale caches.
race:
	$(GO) test -race -shuffle=on -count=1 ./...

# The fhdnndebug build tag swaps a runtime aliasing guard into the tensor
# Into/Accum kernels (unsafe pointer-range overlap check, panics at the
# offending call site). Release builds get a no-op stub.
debugguard:
	$(GO) test -race -tags fhdnndebug -count=1 ./internal/tensor/

# Repo-specific static analysis: determinism, goroutine discipline, wire
# error handling, print/panic hygiene, float32 kernel discipline, plus the
# dataflow rules (aliasing, lockheld, hotalloc, ctxflow). See DESIGN.md
# "Static analysis & enforced invariants".
lint:
	$(GO) run ./cmd/fhdnn-lint ./...

# Machine-readable findings, including //fhdnn:allow-suppressed ones; CI
# uploads this file as an artifact on every matrix leg.
lint-json:
	$(GO) run ./cmd/fhdnn-lint -json -suppressed ./... | tee fhdnn-lint.json

# Seeded poisoning chaos: the Byzantine/robust-aggregation suite under
# the race detector with shuffled execution, then the attack/defense
# matrix (40% colluding poisoners vs every aggregation policy), saved as
# poison-experiments.txt. See DESIGN.md "Threat model & robust
# aggregation" and the Byzantine section of EXPERIMENTS.md.
chaos:
	$(GO) test -race -shuffle=on -count=1 -run 'Byzantine|Robust|Poison|Quarantine|NormClip|Colluders|Attack' ./internal/fedcore ./internal/faults ./internal/fl ./internal/flnet
	$(GO) run ./cmd/fhdnn poison | tee poison-experiments.txt

# Refresh the tracked kernel baseline (BENCH_pr3.json) and the sharded
# aggregation sweep (BENCH_pr7.json), then run the full benchmark suite.
bench:
	$(GO) run ./cmd/fhdnn-bench -out BENCH_pr3.json -shard-out BENCH_pr7.json
	$(GO) test -bench=. -benchmem ./...

# Load-harness smoke: 1k clients over real HTTP against a 4-shard
# in-process server with a mixed codec cycle and 2% poisoners, under the
# race detector. CI runs this and uploads the JSON report as an artifact;
# the full-scale run is `go run ./cmd/fhdnn-loadgen` (100k clients).
loadgen:
	$(GO) run -race ./cmd/fhdnn-loadgen -clients 1000 -concurrency 64 -rounds 2 \
		-shards 4 -dim 256 -poison-frac 0.02 \
		-codecs legacy,raw,float16,int8,topk:0.25 -out loadgen-report.json

# Everything a change must pass before review.
check: build vet lint race debugguard

# What CI runs on every PR.
ci: vet lint race debugguard
