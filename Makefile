GO ?= go

.PHONY: build test race debugguard vet lint lint-json bench chaos check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the whole module; the flnet/faults chaos tests
# are written to be meaningful under -race (concurrent round closing,
# retry storms, deadline timers). Shuffled execution order with -count=1
# keeps tests honest about hidden ordering dependencies and stale caches.
race:
	$(GO) test -race -shuffle=on -count=1 ./...

# The fhdnndebug build tag swaps a runtime aliasing guard into the tensor
# Into/Accum kernels (unsafe pointer-range overlap check, panics at the
# offending call site). Release builds get a no-op stub.
debugguard:
	$(GO) test -race -tags fhdnndebug -count=1 ./internal/tensor/

# Repo-specific static analysis: determinism, goroutine discipline, wire
# error handling, print/panic hygiene, float32 kernel discipline, plus the
# dataflow rules (aliasing, lockheld, hotalloc, ctxflow). See DESIGN.md
# "Static analysis & enforced invariants".
lint:
	$(GO) run ./cmd/fhdnn-lint ./...

# Machine-readable findings, including //fhdnn:allow-suppressed ones; CI
# uploads this file as an artifact on every matrix leg.
lint-json:
	$(GO) run ./cmd/fhdnn-lint -json -suppressed ./... | tee fhdnn-lint.json

# Seeded poisoning chaos: the Byzantine/robust-aggregation suite under
# the race detector with shuffled execution, then the attack/defense
# matrix (40% colluding poisoners vs every aggregation policy), saved as
# poison-experiments.txt. See DESIGN.md "Threat model & robust
# aggregation" and the Byzantine section of EXPERIMENTS.md.
chaos:
	$(GO) test -race -shuffle=on -count=1 -run 'Byzantine|Robust|Poison|Quarantine|NormClip|Colluders|Attack' ./internal/fedcore ./internal/faults ./internal/fl ./internal/flnet
	$(GO) run ./cmd/fhdnn poison | tee poison-experiments.txt

# Refresh the tracked kernel baseline (BENCH_pr3.json), then run the full
# benchmark suite.
bench:
	$(GO) run ./cmd/fhdnn-bench -out BENCH_pr3.json
	$(GO) test -bench=. -benchmem ./...

# Everything a change must pass before review.
check: build vet lint race debugguard

# What CI runs on every PR.
ci: vet lint race debugguard
