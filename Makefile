GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the whole module; the flnet/faults chaos tests
# are written to be meaningful under -race (concurrent round closing,
# retry storms, deadline timers).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# What CI runs on every PR.
ci: vet race
