GO ?= go

.PHONY: build test race vet lint bench check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the whole module; the flnet/faults chaos tests
# are written to be meaningful under -race (concurrent round closing,
# retry storms, deadline timers). Shuffled execution order with -count=1
# keeps tests honest about hidden ordering dependencies and stale caches.
race:
	$(GO) test -race -shuffle=on -count=1 ./...

# Repo-specific static analysis: determinism, goroutine discipline, wire
# error handling, print/panic hygiene and float32 kernel discipline. See
# DESIGN.md "Static analysis & enforced invariants".
lint:
	$(GO) run ./cmd/fhdnn-lint ./...

# Refresh the tracked kernel baseline (BENCH_pr3.json), then run the full
# benchmark suite.
bench:
	$(GO) run ./cmd/fhdnn-bench -out BENCH_pr3.json
	$(GO) test -bench=. -benchmem ./...

# Everything a change must pass before review.
check: build vet lint race

# What CI runs on every PR.
ci: vet lint race
