GO ?= go

.PHONY: build test race debugguard fasttest vet lint lint-json lint-timing lint-ci bench bench-smoke chaos loadgen check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the whole module; the flnet/faults chaos tests
# are written to be meaningful under -race (concurrent round closing,
# retry storms, deadline timers). Shuffled execution order with -count=1
# keeps tests honest about hidden ordering dependencies and stale caches.
race:
	$(GO) test -race -shuffle=on -count=1 ./...

# The fhdnndebug build tag swaps a runtime aliasing guard into the tensor
# Into/Accum kernels (unsafe pointer-range overlap check, panics at the
# offending call site). Release builds get a no-op stub.
debugguard:
	$(GO) test -race -tags fhdnndebug -count=1 ./internal/tensor/

# The fhdnnfast build tag swaps the SSE saxpyQuad microkernel for an
# AVX2/FMA one: faster, deterministic within the build, but NOT
# bit-identical to the default build (fused multiply-adds round once).
# Tests that compare kernels against scalar references re-baseline or
# skip via tensor.FastKernels(); everything else must still pass.
fasttest:
	$(GO) test -tags fhdnnfast -count=1 ./...

# Repo-specific static analysis: determinism, goroutine discipline, wire
# error handling, print/panic hygiene, float32 kernel discipline, plus the
# dataflow rules (aliasing, lockheld, hotalloc, ctxflow). See DESIGN.md
# "Static analysis & enforced invariants".
lint:
	$(GO) run ./cmd/fhdnn-lint ./...

# Machine-readable findings, including //fhdnn:allow-suppressed ones; CI
# uploads this file as an artifact on every matrix leg.
lint-json:
	$(GO) run ./cmd/fhdnn-lint -json -suppressed ./... | tee fhdnn-lint.json

# Per-rule wall-time report on stderr, captured to a file for the CI
# artifact. The call graph, channel inventory and taint fixpoint are
# built once and shared across the module-wide rules; -budget makes the
# 10s whole-repo ceiling a hard failure, so timing regressions land as
# red CI instead of a slowly rotting artifact.
lint-timing:
	@$(GO) run ./cmd/fhdnn-lint -timing -budget 10s ./... 2> fhdnn-lint-timing.txt; \
	st=$$?; cat fhdnn-lint-timing.txt; exit $$st

# The one lint invocation CI runs on every leg: machine-readable
# findings (including suppressed ones) to fhdnn-lint.json, the per-rule
# timing report to fhdnn-lint-timing.txt, and the 10s sweep budget
# enforced. Every CI job uploads one or both files as artifacts.
lint-ci:
	@$(GO) run ./cmd/fhdnn-lint -json -suppressed -timing -budget 10s ./... \
		> fhdnn-lint.json 2> fhdnn-lint-timing.txt; \
	st=$$?; cat fhdnn-lint.json; cat fhdnn-lint-timing.txt >&2; exit $$st

# Seeded poisoning chaos: the Byzantine/robust-aggregation suite under
# the race detector with shuffled execution, then the attack/defense
# matrix (40% colluding poisoners vs every aggregation policy), saved as
# poison-experiments.txt. See DESIGN.md "Threat model & robust
# aggregation" and the Byzantine section of EXPERIMENTS.md.
chaos:
	$(GO) test -race -shuffle=on -count=1 -run 'Byzantine|Robust|Poison|Quarantine|NormClip|Colluders|Attack' ./internal/fedcore ./internal/faults ./internal/fl ./internal/flnet
	$(GO) run ./cmd/fhdnn poison | tee poison-experiments.txt

# Refresh the tracked kernel baseline (BENCH_pr8.json: per-kernel rows at
# workers 1/2/4/8 with speedups and scaling factors, shard sweep embedded)
# and the standalone sharded aggregation sweep (BENCH_pr7.json), then run
# the full benchmark suite. BENCH_pr3.json is the frozen PR-3 baseline;
# per-PR trajectory lives in BENCH_pr8.json from here on.
bench:
	$(GO) run ./cmd/fhdnn-bench -out BENCH_pr8.json -shard-out BENCH_pr7.json
	$(GO) test -bench=. -benchmem ./...

# Quick CI variant: one-worker baseline plus the workers=2 point, no
# BENCH file refresh of the full sweep needed.
bench-smoke:
	$(GO) run ./cmd/fhdnn-bench -workers 1,2 -out BENCH_pr8.json

# Load-harness smoke: 1k clients over real HTTP against a 4-shard
# in-process server with a mixed codec cycle and 2% poisoners, under the
# race detector. CI runs this and uploads the JSON report as an artifact;
# the full-scale run is `go run ./cmd/fhdnn-loadgen` (100k clients).
loadgen:
	$(GO) run -race ./cmd/fhdnn-loadgen -clients 1000 -concurrency 64 -rounds 2 \
		-shards 4 -dim 256 -poison-frac 0.02 \
		-codecs legacy,raw,float16,int8,topk:0.25 -out loadgen-report.json

# Everything a change must pass before review.
check: build vet lint race debugguard fasttest

# What CI runs on every PR.
ci: vet lint race debugguard fasttest
